"""Surfaces of revolution: lathe-turned parts.

Revolving a 2D profile around the Z axis generalizes the cylinder /
frustum / sphere primitives to arbitrary turned geometry (stepped shafts
with fillets, vases, pulleys).  The profile is a polyline in the (r, z)
half-plane with r >= 0; the enclosed solid's volume obeys Pappus's
theorem, which the test suite checks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .mesh import MeshError, TriangleMesh


def surface_of_revolution(
    profile: Sequence[Sequence[float]],
    segments: int = 32,
    close_axis: bool = True,
    name: str = "revolved",
) -> TriangleMesh:
    """Revolve an (r, z) polyline around the Z axis.

    Parameters
    ----------
    profile:
        Polyline [(r0, z0), (r1, z1), ...] with all r >= 0, ordered along
        the outline.  With ``close_axis`` the first and last points are
        connected to the axis by flat caps (unless already on it), closing
        the solid.
    segments:
        Angular resolution of the revolution.

    The returned mesh is outward-oriented when the profile runs from the
    bottom (min z) to the top along the *outside* of the part.
    """
    prof = np.asarray(profile, dtype=np.float64)
    if prof.ndim != 2 or prof.shape[1] != 2 or len(prof) < 2:
        raise MeshError(f"profile needs (n>=2, 2) points, got {prof.shape}")
    if (prof[:, 0] < 0).any():
        raise MeshError("profile radii must be non-negative")
    if segments < 3:
        raise MeshError(f"need >= 3 segments, got {segments}")

    if close_axis:
        pts = list(prof)
        if pts[0][0] > 1e-12:
            pts.insert(0, np.array([0.0, pts[0][1]]))
        if pts[-1][0] > 1e-12:
            pts.append(np.array([0.0, pts[-1][1]]))
        prof = np.asarray(pts)

    angles = 2.0 * np.pi * np.arange(segments) / segments
    cos, sin = np.cos(angles), np.sin(angles)

    vertices = []
    ring_index = []  # per profile point: (start index, is_axis)
    for r, z in prof:
        if r <= 1e-12:
            ring_index.append((len(vertices), True))
            vertices.append(np.array([0.0, 0.0, z]))
        else:
            ring_index.append((len(vertices), False))
            for c, s in zip(cos, sin):
                vertices.append(np.array([r * c, r * s, z]))

    faces = []
    for k in range(len(prof) - 1):
        start_a, axis_a = ring_index[k]
        start_b, axis_b = ring_index[k + 1]
        if axis_a and axis_b:
            continue  # two axis points produce no surface
        for j in range(segments):
            j2 = (j + 1) % segments
            if axis_a:
                faces.append([start_a, start_b + j, start_b + j2])
            elif axis_b:
                faces.append([start_a + j, start_b, start_a + j2])
            else:
                a0, a1 = start_a + j, start_a + j2
                b0, b1 = start_b + j, start_b + j2
                faces.append([a0, b0, b1])
                faces.append([a0, b1, a1])
    mesh = TriangleMesh(np.vstack(vertices), np.asarray(faces, dtype=np.int64), name=name)
    return mesh


def pappus_volume(profile: Sequence[Sequence[float]]) -> float:
    """Analytic volume of the revolved solid (Pappus / shell integration).

    For the closed region bounded by the (r, z) profile (with the axis
    closing it), the solid of revolution has volume
    V = pi * ∮ r^2 dz  (integrating around the closed outline).
    """
    prof = np.asarray(profile, dtype=np.float64)
    pts = list(prof)
    if pts[0][0] > 1e-12:
        pts.insert(0, np.array([0.0, pts[0][1]]))
    if pts[-1][0] > 1e-12:
        pts.append(np.array([0.0, pts[-1][1]]))
    pts.append(pts[0])  # close along the axis
    total = 0.0
    for (r0, z0), (r1, z1) in zip(pts[:-1], pts[1:]):
        # ∫ r^2 dz along the segment with r linear in z.
        total += (z1 - z0) * (r0**2 + r0 * r1 + r1**2) / 3.0
    return abs(np.pi * total)
