"""Mesh repair: orientation fixing, degeneracy removal, validation.

Real CAD exports arrive with inconsistent winding, duplicate vertices, or
sliver faces; moment extraction assumes consistently outward-oriented
closed meshes.  This module provides the standard repairs:

* :func:`remove_degenerate_faces` — drop zero-area faces,
* :func:`fix_orientation` — propagate a consistent winding over each
  connected component and flip components whose signed volume is negative
  (so closed shells end up outward),
* :func:`validate_mesh` — a structured health report.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .mesh import MeshError, TriangleMesh


def remove_degenerate_faces(mesh: TriangleMesh, area_tol: float = 1e-12) -> TriangleMesh:
    """Drop faces whose area is at or below ``area_tol``."""
    if mesh.n_faces == 0:
        return mesh.copy()
    keep = mesh.face_areas() > area_tol
    return TriangleMesh(mesh.vertices.copy(), mesh.faces[keep], name=mesh.name)


def _edge_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)


def fix_orientation(mesh: TriangleMesh) -> TriangleMesh:
    """Make face windings consistent and outward where closed.

    Winding consistency is propagated by BFS over edge-adjacent faces:
    two faces sharing an edge are consistently wound when they traverse
    the shared edge in opposite directions.  After propagation, any
    connected component that encloses negative signed volume is flipped
    wholesale.  Non-manifold edges (more than two incident faces) make
    global consistency impossible; those extra adjacencies are ignored
    rather than fought.
    """
    if mesh.n_faces == 0:
        return mesh.copy()
    faces = mesh.faces.copy()

    edge_faces: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    for fi, face in enumerate(faces):
        for k in range(3):
            edge_faces[_edge_key(int(face[k]), int(face[(k + 1) % 3]))].append(fi)

    def traverses(face: np.ndarray, a: int, b: int) -> bool:
        """Whether the face contains directed edge a->b."""
        for k in range(3):
            if face[k] == a and face[(k + 1) % 3] == b:
                return True
        return False

    visited = np.zeros(len(faces), dtype=bool)
    component_of = np.full(len(faces), -1, dtype=np.int64)
    n_components = 0
    for seed in range(len(faces)):
        if visited[seed]:
            continue
        component = n_components
        n_components += 1
        visited[seed] = True
        component_of[seed] = component
        queue = deque([seed])
        while queue:
            cur = queue.popleft()
            face = faces[cur]
            for k in range(3):
                a, b = int(face[k]), int(face[(k + 1) % 3])
                incident = edge_faces[_edge_key(a, b)]
                if len(incident) != 2:
                    continue  # boundary or non-manifold: skip
                other = incident[0] if incident[1] == cur else incident[1]
                if visited[other]:
                    continue
                # Consistent orientation: the neighbor must traverse the
                # shared edge in the opposite direction (b -> a).
                if traverses(faces[other], a, b):
                    faces[other] = faces[other][::-1]
                visited[other] = True
                component_of[other] = component
                queue.append(other)

    out = TriangleMesh(mesh.vertices.copy(), faces, name=mesh.name)
    # Flip whole components that are inward-oriented (negative volume).
    tri = out.triangles
    cross = np.cross(tri[:, 1], tri[:, 2])
    contrib = np.einsum("ij,ij->i", tri[:, 0], cross) / 6.0
    for component in range(n_components):
        members = component_of == component
        if contrib[members].sum() < 0:
            flipped = faces[members][:, ::-1]
            faces[members] = flipped
    return TriangleMesh(mesh.vertices.copy(), faces, name=mesh.name)


@dataclass
class MeshReport:
    """Structured mesh-health summary."""

    n_vertices: int
    n_faces: int
    n_components: int
    n_degenerate_faces: int
    n_boundary_edges: int
    n_nonmanifold_edges: int
    n_inconsistent_edges: int
    is_watertight: bool
    is_outward: bool
    euler_characteristic: int

    @property
    def is_clean(self) -> bool:
        """Ready for exact moment extraction without repair."""
        return (
            self.is_watertight
            and self.is_outward
            and self.n_degenerate_faces == 0
            and self.n_nonmanifold_edges == 0
            and self.n_inconsistent_edges == 0
        )

    def format(self) -> str:
        flags = []
        if not self.is_watertight:
            flags.append(f"{self.n_boundary_edges} boundary edges")
        if self.n_nonmanifold_edges:
            flags.append(f"{self.n_nonmanifold_edges} non-manifold edges")
        if self.n_inconsistent_edges:
            flags.append(f"{self.n_inconsistent_edges} inconsistently wound edges")
        if self.n_degenerate_faces:
            flags.append(f"{self.n_degenerate_faces} degenerate faces")
        if not self.is_outward:
            flags.append("inward orientation")
        status = "clean" if self.is_clean else "; ".join(flags)
        return (
            f"mesh: {self.n_vertices} vertices, {self.n_faces} faces, "
            f"{self.n_components} components, chi={self.euler_characteristic} "
            f"[{status}]"
        )


def validate_mesh(mesh: TriangleMesh, area_tol: float = 1e-12) -> MeshReport:
    """Inspect a mesh without modifying it."""
    if mesh.n_faces == 0:
        raise MeshError("cannot validate an empty mesh")
    directed = mesh.edges(unique=False)
    halves = np.sort(directed, axis=1)
    unique_edges, inverse, counts = np.unique(
        halves, axis=0, return_inverse=True, return_counts=True
    )
    boundary = int((counts == 1).sum())
    nonmanifold = int((counts > 2).sum())
    # A consistently wound manifold edge is traversed once in each
    # direction; two same-direction traversals flag a winding flip.
    inconsistent = 0
    forward = directed[:, 0] < directed[:, 1]
    forward_count = np.zeros(len(unique_edges), dtype=np.int64)
    np.add.at(forward_count, inverse, forward.astype(np.int64))
    both = counts == 2
    inconsistent = int((forward_count[both] != 1).sum())
    degenerate = int((mesh.face_areas() <= area_tol).sum())
    watertight = boundary == 0 and nonmanifold == 0
    from .properties import signed_volume

    outward = signed_volume(mesh) >= 0
    return MeshReport(
        n_vertices=mesh.n_vertices,
        n_faces=mesh.n_faces,
        n_components=mesh.n_components(),
        n_degenerate_faces=degenerate,
        n_boundary_edges=boundary,
        n_nonmanifold_edges=nonmanifold,
        n_inconsistent_edges=inconsistent,
        is_watertight=watertight,
        is_outward=outward,
        euler_characteristic=mesh.euler_characteristic(),
    )


def repair_mesh(mesh: TriangleMesh, weld_tol: float = 1e-9) -> TriangleMesh:
    """Standard repair pipeline: weld, drop degenerates, fix orientation."""
    out = mesh.merge_duplicate_vertices(tol=weld_tol)
    out = remove_degenerate_faces(out)
    if out.n_faces == 0:
        raise MeshError("mesh has no non-degenerate faces after cleanup")
    return fix_orientation(out)
