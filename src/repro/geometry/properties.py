"""Exact integral properties of closed triangle meshes.

Surface area, enclosed volume, and centroid are computed with the
divergence theorem over signed origin tetrahedra; the results are exact
for closed, consistently oriented meshes and are the inputs to both the
geometric-parameter feature vector (Section 3.5.2 of the paper) and the
moment normalization criteria (Section 3.1).
"""

from __future__ import annotations

import numpy as np

from .mesh import MeshError, TriangleMesh


def surface_area(mesh: TriangleMesh) -> float:
    """Total surface area (sum of triangle areas)."""
    return float(mesh.face_areas().sum())


def signed_volume(mesh: TriangleMesh) -> float:
    """Signed enclosed volume via the divergence theorem.

    Positive for outward-oriented closed meshes; the magnitude is exact for
    watertight meshes and counts overlap regions with multiplicity for
    self-intersecting composites (see ``geometry.composite``).
    """
    tri = mesh.triangles
    # Signed volume of tetrahedron (origin, a, b, c) summed over faces.
    cross = np.cross(tri[:, 1], tri[:, 2])
    return float(np.einsum("ij,ij->i", tri[:, 0], cross).sum() / 6.0)


def volume(mesh: TriangleMesh) -> float:
    """Absolute enclosed volume."""
    return abs(signed_volume(mesh))


def centroid(mesh: TriangleMesh) -> np.ndarray:
    """Volume centroid (center of mass of the enclosed solid).

    Raises
    ------
    MeshError
        If the enclosed volume is numerically zero (open or flat mesh).
    """
    tri = mesh.triangles
    cross = np.cross(tri[:, 1], tri[:, 2])
    vols = np.einsum("ij,ij->i", tri[:, 0], cross) / 6.0
    total = vols.sum()
    if abs(total) < 1e-15:
        raise MeshError("mesh encloses zero volume; centroid undefined")
    # Tetra centroid is the mean of its four corners (origin contributes 0).
    tet_centroids = tri.sum(axis=1) / 4.0
    return np.asarray((tet_centroids * vols[:, None]).sum(axis=0) / total)


def surface_centroid(mesh: TriangleMesh) -> np.ndarray:
    """Area-weighted centroid of the surface (robust for open meshes)."""
    areas = mesh.face_areas()
    total = areas.sum()
    if total <= 0:
        raise MeshError("mesh has zero surface area")
    return np.asarray((mesh.face_centroids() * areas[:, None]).sum(axis=0) / total)


def aspect_ratios(mesh: TriangleMesh) -> tuple:
    """The paper's two aspect ratios from the bounding box of the model.

    With sorted bounding-box extents ``e1 >= e2 >= e3`` the ratios are
    ``e1/e2`` and ``e2/e3``.  A large first ratio indicates a slim part.
    Zero extents (flat models) map the affected ratio to ``inf`` guarded to
    a large finite constant so feature vectors stay finite.
    """
    exts = np.sort(mesh.extents())[::-1]
    guard = 1e6
    r12 = exts[0] / exts[1] if exts[1] > 0 else guard
    r23 = exts[1] / exts[2] if exts[2] > 0 else guard
    return float(min(r12, guard)), float(min(r23, guard))


def surface_to_volume_ratio(mesh: TriangleMesh) -> float:
    """Ratio of overall surface area to enclosed volume.

    A large value implies a shell-like part (Section 3.5.2).
    """
    vol = volume(mesh)
    if vol < 1e-15:
        raise MeshError("mesh encloses zero volume; S/V ratio undefined")
    return surface_area(mesh) / vol
