"""PLY (Stanford polygon format) reader/writer, ASCII and binary LE.

Rounds out the CAD-exchange formats the interface accepts.  Only the
vertex ``x``/``y``/``z`` properties and face vertex-index lists are
interpreted; other per-element properties are skipped on load.
"""

from __future__ import annotations

import os
import struct
from typing import List, Union

import numpy as np

from .mesh import MeshError, TriangleMesh

_DTYPES = {
    "char": ("b", 1), "int8": ("b", 1),
    "uchar": ("B", 1), "uint8": ("B", 1),
    "short": ("h", 2), "int16": ("h", 2),
    "ushort": ("H", 2), "uint16": ("H", 2),
    "int": ("i", 4), "int32": ("i", 4),
    "uint": ("I", 4), "uint32": ("I", 4),
    "float": ("f", 4), "float32": ("f", 4),
    "double": ("d", 8), "float64": ("d", 8),
}


def _parse_header(blob: bytes):
    lines = []
    pos = 0
    while True:
        end = blob.index(b"\n", pos)
        line = blob[pos:end].decode("ascii", errors="replace").strip()
        pos = end + 1
        lines.append(line)
        if line == "end_header":
            break
        if pos > 65536:
            raise MeshError("PLY header too large or unterminated")
    if not lines or lines[0] != "ply":
        raise MeshError("not a PLY file (missing 'ply' magic)")
    fmt = None
    elements = []  # (name, count, [(prop_kind, ...)...])
    for line in lines[1:]:
        parts = line.split()
        if not parts or parts[0] == "comment":
            continue
        if parts[0] == "format":
            fmt = parts[1]
        elif parts[0] == "element":
            elements.append((parts[1], int(parts[2]), []))
        elif parts[0] == "property":
            if not elements:
                raise MeshError("PLY property before any element")
            if parts[1] == "list":
                elements[-1][2].append(("list", parts[2], parts[3], parts[4]))
            else:
                elements[-1][2].append(("scalar", parts[1], parts[2]))
    if fmt not in ("ascii", "binary_little_endian"):
        raise MeshError(f"unsupported PLY format {fmt!r}")
    return fmt, elements, pos


def load_ply(path: Union[str, os.PathLike]) -> TriangleMesh:
    """Load a PLY mesh (ascii or binary little-endian)."""
    with open(path, "rb") as handle:
        blob = handle.read()
    fmt, elements, pos = _parse_header(blob)
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]

    vertices: List[List[float]] = []
    faces: List[List[int]] = []

    if fmt == "ascii":
        tokens = blob[pos:].split()
        ti = 0
        for elem_name, count, props in elements:
            for _ in range(count):
                values = []
                for prop in props:
                    if prop[0] == "list":
                        arity = int(float(tokens[ti])); ti += 1
                        items = [int(float(tokens[ti + j])) for j in range(arity)]
                        ti += arity
                        values.append(items)
                    else:
                        values.append(float(tokens[ti])); ti += 1
                _collect(elem_name, props, values, vertices, faces)
    else:
        offset = pos
        for elem_name, count, props in elements:
            for _ in range(count):
                values = []
                for prop in props:
                    if prop[0] == "list":
                        cfmt, csize = _DTYPES[prop[1]]
                        (arity,) = struct.unpack_from("<" + cfmt, blob, offset)
                        offset += csize
                        ifmt, isize = _DTYPES[prop[2]]
                        items = list(
                            struct.unpack_from("<" + ifmt * arity, blob, offset)
                        )
                        offset += isize * arity
                        values.append([int(v) for v in items])
                    else:
                        sfmt, ssize = _DTYPES[prop[1]]
                        (val,) = struct.unpack_from("<" + sfmt, blob, offset)
                        offset += ssize
                        values.append(float(val))
                _collect(elem_name, props, values, vertices, faces)

    verts = np.asarray(vertices, dtype=np.float64).reshape(-1, 3)
    tris: List[List[int]] = []
    for idx in faces:
        if len(idx) < 3:
            raise MeshError(f"{path}: face with fewer than 3 vertices")
        for k in range(1, len(idx) - 1):
            tris.append([idx[0], idx[k], idx[k + 1]])
    return TriangleMesh(
        verts, np.asarray(tris, dtype=np.int64).reshape(-1, 3), name=name
    )


def _collect(elem_name, props, values, vertices, faces) -> None:
    if elem_name == "vertex":
        coords = {}
        for prop, value in zip(props, values):
            if prop[0] == "scalar" and prop[2] in ("x", "y", "z"):
                coords[prop[2]] = value
        if len(coords) != 3:
            raise MeshError("PLY vertex element lacks x/y/z properties")
        vertices.append([coords["x"], coords["y"], coords["z"]])
    elif elem_name == "face":
        for prop, value in zip(props, values):
            if prop[0] == "list":
                faces.append(value)
                break


def save_ply(
    mesh: TriangleMesh, path: Union[str, os.PathLike], binary: bool = True
) -> None:
    """Write the mesh as PLY (binary little-endian by default)."""
    header = [
        "ply",
        f"format {'binary_little_endian' if binary else 'ascii'} 1.0",
        f"comment repro 3DESS export: {mesh.name or 'mesh'}",
        f"element vertex {mesh.n_vertices}",
        "property double x",
        "property double y",
        "property double z",
        f"element face {mesh.n_faces}",
        "property list uchar int vertex_indices",
        "end_header",
    ]
    with open(path, "wb") as handle:
        handle.write(("\n".join(header) + "\n").encode("ascii"))
        if binary:
            for x, y, z in mesh.vertices:
                handle.write(struct.pack("<3d", x, y, z))
            for a, b, c in mesh.faces:
                handle.write(struct.pack("<B3i", 3, a, b, c))
        else:
            for x, y, z in mesh.vertices:
                handle.write(
                    f"{float(x)!r} {float(y)!r} {float(z)!r}\n".encode("ascii")
                )
            for a, b, c in mesh.faces:
                handle.write(f"3 {a} {b} {c}\n".encode("ascii"))
