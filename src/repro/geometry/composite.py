"""Composition of primitives into engineering parts.

The synthetic corpus assembles parts from primitives placed by rigid
transforms.  Components are concatenated as triangle soups; when component
volumes overlap, the implied density function counts the overlap with
multiplicity.  That is consistent between database shapes and query shapes
(both go through the same generators), so moment-based features remain
well-defined; the binary voxel pipeline is unaffected by overlap.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .mesh import TriangleMesh
from .transform import rotate, translate


class Placement:
    """A primitive plus the rigid transform that places it in the part.

    Rotation is applied before translation.
    """

    def __init__(
        self,
        mesh: TriangleMesh,
        offset: Sequence[float] = (0.0, 0.0, 0.0),
        rotation: Optional[np.ndarray] = None,
    ) -> None:
        self.mesh = mesh
        self.offset = np.asarray(offset, dtype=np.float64)
        self.rotation = None if rotation is None else np.asarray(rotation, dtype=np.float64)

    def realize(self) -> TriangleMesh:
        """Apply the placement and return the transformed mesh."""
        out = self.mesh
        if self.rotation is not None:
            out = rotate(out, self.rotation)
        return translate(out, self.offset)


def assemble(placements: Sequence[Placement], name: str = "part") -> TriangleMesh:
    """Realize all placements and concatenate them into one part."""
    realized = [p.realize() for p in placements]
    mesh = TriangleMesh.concatenate(realized, name=name)
    mesh.name = name
    return mesh
