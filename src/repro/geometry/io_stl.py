"""STL reader/writer (ASCII and binary).

STL stores an unindexed triangle soup; loading welds coincident vertices so
the topology-dependent stages (watertightness, skeletonization) behave as
they do for indexed formats.
"""

from __future__ import annotations

import os
import struct
from typing import Union

import numpy as np

from .mesh import MeshError, TriangleMesh

_BINARY_HEADER_LEN = 80
_WELD_TOLERANCE = 1e-9


def _soup_to_mesh(triangles: np.ndarray, name: str) -> TriangleMesh:
    verts = triangles.reshape(-1, 3)
    faces = np.arange(len(verts), dtype=np.int64).reshape(-1, 3)
    return TriangleMesh(verts, faces, name=name).merge_duplicate_vertices(
        tol=_WELD_TOLERANCE
    )


def _load_ascii(text: str, name: str) -> TriangleMesh:
    coords = []
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 4 and parts[0].lower() == "vertex":
            coords.append([float(v) for v in parts[1:4]])
    if not coords or len(coords) % 3:
        raise MeshError("ASCII STL has a non-multiple-of-3 vertex count")
    return _soup_to_mesh(np.asarray(coords, dtype=np.float64).reshape(-1, 3, 3), name)


def _load_binary(blob: bytes, name: str) -> TriangleMesh:
    if len(blob) < _BINARY_HEADER_LEN + 4:
        raise MeshError("binary STL truncated before triangle count")
    (count,) = struct.unpack_from("<I", blob, _BINARY_HEADER_LEN)
    expected = _BINARY_HEADER_LEN + 4 + count * 50
    if len(blob) < expected:
        raise MeshError(
            f"binary STL truncated: expected {expected} bytes, got {len(blob)}"
        )
    records = np.frombuffer(
        blob,
        dtype=np.dtype(
            [
                ("normal", "<f4", 3),
                ("v", "<f4", (3, 3)),
                ("attr", "<u2"),
            ]
        ),
        count=count,
        offset=_BINARY_HEADER_LEN + 4,
    )
    return _soup_to_mesh(records["v"].astype(np.float64), name)


def load_stl(path: Union[str, os.PathLike]) -> TriangleMesh:
    """Load an STL file, auto-detecting ASCII vs binary."""
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    with open(path, "rb") as handle:
        blob = handle.read()
    head = blob[:512].lstrip()
    if head.startswith(b"solid"):
        # Could still be binary with a "solid" header; trust the structure.
        try:
            return _load_ascii(blob.decode("utf-8", errors="replace"), name)
        except MeshError:
            pass
    return _load_binary(blob, name)


def save_stl(
    mesh: TriangleMesh, path: Union[str, os.PathLike], binary: bool = True
) -> None:
    """Write the mesh as STL (binary by default)."""
    tri = mesh.triangles
    normals = mesh.face_normals()
    if binary:
        with open(path, "wb") as handle:
            handle.write(b"repro binary STL".ljust(_BINARY_HEADER_LEN, b"\0"))
            handle.write(struct.pack("<I", mesh.n_faces))
            for n, t in zip(normals, tri):
                handle.write(struct.pack("<3f", *n))
                for corner in t:
                    handle.write(struct.pack("<3f", *corner))
                handle.write(struct.pack("<H", 0))
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"solid {mesh.name or 'mesh'}\n")
        for n, t in zip(normals, tri):
            handle.write(f"  facet normal {float(n[0])!r} {float(n[1])!r} {float(n[2])!r}\n")
            handle.write("    outer loop\n")
            for corner in t:
                handle.write(
                    f"      vertex {float(corner[0])!r} {float(corner[1])!r} {float(corner[2])!r}\n"
                )
            handle.write("    endloop\n")
            handle.write("  endfacet\n")
        handle.write(f"endsolid {mesh.name or 'mesh'}\n")
