"""Triangle-mesh data structure used throughout the library.

The paper's 3DESS prototype consumed CAD models through the ACIS kernel and
triangulated them for display and feature extraction.  This module provides
the equivalent substrate: an immutable-by-convention triangle soup with
explicit vertex and face arrays, plus the bookkeeping queries (adjacency,
edges, connected components) the rest of the pipeline relies on.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


class MeshError(ValueError):
    """Raised for malformed mesh construction or query arguments."""


class TriangleMesh:
    """A triangle mesh defined by an (n, 3) float vertex array and an
    (m, 3) int face array indexing into it.

    Vertices are stored as ``float64`` and faces as ``int64``.  The class
    performs validation at construction time so downstream geometry code can
    assume well-formed input.

    Parameters
    ----------
    vertices:
        Sequence of 3D points, shape (n, 3).
    faces:
        Sequence of vertex-index triples, shape (m, 3).
    name:
        Optional human-readable label carried through the pipeline.
    """

    def __init__(
        self,
        vertices: Iterable[Sequence[float]],
        faces: Iterable[Sequence[int]],
        name: str = "",
    ) -> None:
        verts = np.asarray(vertices, dtype=np.float64)
        tris = np.asarray(faces, dtype=np.int64)
        if verts.size == 0:
            verts = verts.reshape(0, 3)
        if tris.size == 0:
            tris = tris.reshape(0, 3)
        if verts.ndim != 2 or verts.shape[1] != 3:
            raise MeshError(f"vertices must have shape (n, 3), got {verts.shape}")
        if tris.ndim != 2 or tris.shape[1] != 3:
            raise MeshError(f"faces must have shape (m, 3), got {tris.shape}")
        if not np.isfinite(verts).all():
            raise MeshError("vertices contain NaN or infinite coordinates")
        if tris.size and (tris.min() < 0 or tris.max() >= len(verts)):
            raise MeshError(
                f"face indices must lie in [0, {len(verts) - 1}], "
                f"got range [{tris.min()}, {tris.max()}]"
            )
        self.vertices = verts
        self.faces = tris
        self.name = name

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    @property
    def n_faces(self) -> int:
        """Number of triangular faces."""
        return len(self.faces)

    @property
    def triangles(self) -> np.ndarray:
        """Face corner coordinates, shape (m, 3, 3)."""
        return self.vertices[self.faces]

    def copy(self) -> "TriangleMesh":
        """Deep copy of the mesh."""
        return TriangleMesh(self.vertices.copy(), self.faces.copy(), name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<TriangleMesh{label} vertices={self.n_vertices} "
            f"faces={self.n_faces}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TriangleMesh):
            return NotImplemented
        return (
            self.vertices.shape == other.vertices.shape
            and self.faces.shape == other.faces.shape
            and np.array_equal(self.vertices, other.vertices)
            and np.array_equal(self.faces, other.faces)
        )

    def __hash__(self) -> int:
        return hash((self.vertices.tobytes(), self.faces.tobytes()))

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    def face_normals(self, normalized: bool = True) -> np.ndarray:
        """Per-face normals, shape (m, 3).

        With ``normalized=False`` the raw cross products are returned, whose
        magnitude is twice the triangle area.  Degenerate faces yield a zero
        vector instead of NaN.
        """
        tri = self.triangles
        raw = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        if not normalized:
            return raw
        norms = np.linalg.norm(raw, axis=1)
        safe = np.where(norms > 0, norms, 1.0)
        return raw / safe[:, None]

    def face_areas(self) -> np.ndarray:
        """Per-face areas, shape (m,)."""
        return 0.5 * np.linalg.norm(self.face_normals(normalized=False), axis=1)

    def face_centroids(self) -> np.ndarray:
        """Per-face centroids, shape (m, 3)."""
        return self.triangles.mean(axis=1)

    def edges(self, unique: bool = True) -> np.ndarray:
        """Edge list as vertex-index pairs.

        With ``unique=True`` (default) each undirected edge appears once
        (sorted low-high).  Otherwise all 3m directed half-edges are
        returned in face order.
        """
        f = self.faces
        halves = np.concatenate([f[:, [0, 1]], f[:, [1, 2]], f[:, [2, 0]]])
        if not unique:
            return halves
        ordered = np.sort(halves, axis=1)
        return np.unique(ordered, axis=0)

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box as ``(min_corner, max_corner)``."""
        if self.n_vertices == 0:
            raise MeshError("empty mesh has no bounding box")
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def extents(self) -> np.ndarray:
        """Bounding-box edge lengths, shape (3,)."""
        lo, hi = self.bounds()
        return hi - lo

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def is_watertight(self) -> bool:
        """True when every undirected edge borders exactly two faces."""
        if self.n_faces == 0:
            return False
        halves = np.sort(self.edges(unique=False), axis=1)
        _, counts = np.unique(halves, axis=0, return_counts=True)
        return bool((counts == 2).all())

    def euler_characteristic(self) -> int:
        """V - E + F of the referenced sub-complex."""
        used = np.unique(self.faces)
        return int(len(used) - len(self.edges(unique=True)) + self.n_faces)

    def vertex_components(self) -> np.ndarray:
        """Connected-component label per vertex (edge connectivity).

        Isolated vertices each get their own label.
        """
        n = self.n_vertices
        parent = np.arange(n)

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for u, v in self.edges(unique=True):
            ru, rv = find(int(u)), find(int(v))
            if ru != rv:
                parent[rv] = ru
        roots = np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)
        _, labels = np.unique(roots, return_inverse=True)
        return labels

    def n_components(self) -> int:
        """Number of edge-connected components."""
        if self.n_vertices == 0:
            return 0
        return int(self.vertex_components().max()) + 1

    # ------------------------------------------------------------------
    # Cleanup / construction helpers
    # ------------------------------------------------------------------
    def remove_unused_vertices(self) -> "TriangleMesh":
        """Return a mesh keeping only vertices referenced by faces."""
        used = np.unique(self.faces)
        remap = np.full(self.n_vertices, -1, dtype=np.int64)
        remap[used] = np.arange(len(used))
        return TriangleMesh(self.vertices[used], remap[self.faces], name=self.name)

    def merge_duplicate_vertices(self, tol: float = 1e-9) -> "TriangleMesh":
        """Weld vertices closer than ``tol`` (grid quantization) and drop
        the degenerate faces produced by welding."""
        if self.n_vertices == 0:
            return self.copy()
        quant = np.round(self.vertices / tol).astype(np.int64)
        _, first_idx, inverse = np.unique(
            quant, axis=0, return_index=True, return_inverse=True
        )
        new_faces = inverse[self.faces]
        ok = (
            (new_faces[:, 0] != new_faces[:, 1])
            & (new_faces[:, 1] != new_faces[:, 2])
            & (new_faces[:, 2] != new_faces[:, 0])
        )
        mesh = TriangleMesh(
            self.vertices[first_idx], new_faces[ok], name=self.name
        )
        return mesh.remove_unused_vertices()

    def flipped(self) -> "TriangleMesh":
        """Mesh with reversed face orientation."""
        return TriangleMesh(
            self.vertices.copy(), self.faces[:, [0, 2, 1]].copy(), name=self.name
        )

    @staticmethod
    def concatenate(
        meshes: Sequence["TriangleMesh"], name: Optional[str] = None
    ) -> "TriangleMesh":
        """Concatenate several meshes into one (no welding or CSG)."""
        if not meshes:
            return TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64))
        verts = []
        faces = []
        offset = 0
        for mesh in meshes:
            verts.append(mesh.vertices)
            faces.append(mesh.faces + offset)
            offset += mesh.n_vertices
        return TriangleMesh(
            np.concatenate(verts),
            np.concatenate(faces),
            name=name if name is not None else meshes[0].name,
        )
