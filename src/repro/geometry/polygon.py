"""2D polygon utilities: area, orientation, and ear-clipping triangulation.

Engineering cross-sections (L, U, T, H, cross, C, comb profiles) are
described as simple 2D polygons and extruded into solids; ear clipping
turns any simple polygon into triangles for the prism caps.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


class PolygonError(ValueError):
    """Raised for degenerate or non-simple polygon input."""


def polygon_area(points: Sequence[Sequence[float]]) -> float:
    """Signed area via the shoelace formula (positive for CCW)."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or len(pts) < 3:
        raise PolygonError(f"polygon needs (n>=3, 2) points, got {pts.shape}")
    x, y = pts[:, 0], pts[:, 1]
    return float(
        0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
    )


def ensure_ccw(points: Sequence[Sequence[float]]) -> np.ndarray:
    """Return the polygon with counter-clockwise winding."""
    pts = np.asarray(points, dtype=np.float64)
    if polygon_area(pts) < 0:
        return pts[::-1].copy()
    return pts.copy()


def _cross2(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    return float((a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]))


def _point_in_triangle(
    p: np.ndarray, a: np.ndarray, b: np.ndarray, c: np.ndarray, eps: float = 0.0
) -> bool:
    """Closed-triangle containment.

    ``eps`` widens the boundary band: a point within ``eps`` of an edge
    counts as inside.  Ear clipping needs this because polygon vertices
    that lie *exactly* on a candidate diagonal (staircase corners) must
    block the ear, and raw float crosses wobble around zero there.
    """
    d1 = _cross2(a, b, p)
    d2 = _cross2(b, c, p)
    d3 = _cross2(c, a, p)
    has_neg = (d1 < -eps) or (d2 < -eps) or (d3 < -eps)
    has_pos = (d1 > eps) or (d2 > eps) or (d3 > eps)
    return not (has_neg and has_pos)


def triangulate_polygon(points: Sequence[Sequence[float]]) -> List[Tuple[int, int, int]]:
    """Ear-clipping triangulation of a simple polygon.

    Returns index triples into the *input* point order (before any winding
    fix), each triple wound counter-clockwise.

    Raises
    ------
    PolygonError
        If the polygon is degenerate or no ear can be clipped (typically a
        self-intersecting input).
    """
    pts_in = np.asarray(points, dtype=np.float64)
    if pts_in.ndim != 2 or pts_in.shape[1] != 2 or len(pts_in) < 3:
        raise PolygonError(f"polygon needs (n>=3, 2) points, got {pts_in.shape}")
    reversed_input = polygon_area(pts_in) < 0
    pts = pts_in[::-1] if reversed_input else pts_in

    n = len(pts)
    indices = list(range(n))
    triangles: List[Tuple[int, int, int]] = []
    eps = 1e-12 * max(1.0, float(np.abs(pts).max()) ** 2)

    guard = 0
    while len(indices) > 3:
        guard += 1
        if guard > 2 * n * n:
            raise PolygonError("ear clipping failed; polygon may self-intersect")
        clipped = False
        for k in range(len(indices)):
            i_prev = indices[k - 1]
            i_curr = indices[k]
            i_next = indices[(k + 1) % len(indices)]
            a, b, c = pts[i_prev], pts[i_curr], pts[i_next]
            if _cross2(a, b, c) <= eps:
                continue  # reflex or collinear vertex; not an ear
            ear = True
            for j in indices:
                if j in (i_prev, i_curr, i_next):
                    continue
                if _point_in_triangle(pts[j], a, b, c, eps=eps):
                    ear = False
                    break
            if ear:
                triangles.append((i_prev, i_curr, i_next))
                indices.pop(k)
                clipped = True
                break
        if not clipped:
            # Collinear chains (e.g. staircase corners) can leave a
            # zero-area remainder once all real ears are clipped.  It is
            # fan-triangulated into degenerate triangles: they enclose no
            # area but keep every polygon edge paired, so prism caps stay
            # watertight.
            remainder = abs(polygon_area(pts[indices]))
            if remainder <= 1e-9 * max(1.0, float(np.abs(pts).max()) ** 2):
                for k in range(1, len(indices) - 1):
                    triangles.append((indices[0], indices[k], indices[k + 1]))
                indices = []
                break
            raise PolygonError("no ear found; polygon may self-intersect")
    if len(indices) == 3:
        triangles.append((indices[0], indices[1], indices[2]))

    if reversed_input:
        last = n - 1
        triangles = [(last - a, last - b, last - c) for a, b, c in triangles]
    return triangles


def regular_polygon(n_sides: int, radius: float, phase: float = 0.0) -> np.ndarray:
    """Vertices of a regular n-gon (CCW), shape (n, 2)."""
    if n_sides < 3:
        raise PolygonError(f"need at least 3 sides, got {n_sides}")
    if radius <= 0:
        raise PolygonError(f"radius must be positive, got {radius}")
    angles = phase + 2.0 * np.pi * np.arange(n_sides) / n_sides
    return np.column_stack([radius * np.cos(angles), radius * np.sin(angles)])


def rectangle(width: float, height: float) -> np.ndarray:
    """Axis-aligned CCW rectangle centered at the origin, shape (4, 2)."""
    if width <= 0 or height <= 0:
        raise PolygonError("rectangle extents must be positive")
    w, h = width / 2.0, height / 2.0
    return np.array([[-w, -h], [w, -h], [w, h], [-w, h]])
