"""Closed, outward-oriented parametric primitives.

These are the building blocks of the synthetic engineering corpus
(`repro.datasets`).  Every generator returns a watertight
:class:`~repro.geometry.mesh.TriangleMesh` whose enclosed volume matches the
analytic value, so exact moment computation (Section 3 of the paper) holds.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .mesh import MeshError, TriangleMesh
from .polygon import ensure_ccw, polygon_area, regular_polygon, triangulate_polygon


def box(extents: Sequence[float] = (1.0, 1.0, 1.0), center: Sequence[float] = (0.0, 0.0, 0.0)) -> TriangleMesh:
    """Axis-aligned rectangular box."""
    ext = np.asarray(extents, dtype=np.float64)
    ctr = np.asarray(center, dtype=np.float64)
    if ext.shape != (3,) or (ext <= 0).any():
        raise MeshError(f"box extents must be 3 positive numbers, got {extents}")
    half = ext / 2.0
    signs = np.array(
        [[sx, sy, sz] for sx in (-1, 1) for sy in (-1, 1) for sz in (-1, 1)],
        dtype=np.float64,
    )
    verts = ctr + signs * half
    # Outward-oriented faces of the unit cube with the vertex order above
    # (index = 4*x + 2*y + z with bits in {0,1}).
    faces = np.array(
        [
            [0, 1, 3], [0, 3, 2],  # -x
            [4, 6, 7], [4, 7, 5],  # +x
            [0, 4, 5], [0, 5, 1],  # -y
            [2, 3, 7], [2, 7, 6],  # +y
            [0, 2, 6], [0, 6, 4],  # -z
            [1, 5, 7], [1, 7, 3],  # +z
        ],
        dtype=np.int64,
    )
    return TriangleMesh(verts, faces, name="box")


def extrude_polygon(
    profile: Sequence[Sequence[float]], height: float, name: str = "prism"
) -> TriangleMesh:
    """Extrude a simple 2D polygon along +Z from z=0 to z=height.

    The profile may be given in either winding; it is normalized to CCW so
    the resulting prism is outward-oriented.
    """
    if height <= 0:
        raise MeshError(f"extrusion height must be positive, got {height}")
    poly = ensure_ccw(profile)
    n = len(poly)
    tris = triangulate_polygon(poly)

    bottom = np.column_stack([poly, np.zeros(n)])
    top = np.column_stack([poly, np.full(n, float(height))])
    verts = np.vstack([bottom, top])

    faces = []
    for a, b, c in tris:
        faces.append([a, c, b])          # bottom cap faces -z
        faces.append([n + a, n + b, n + c])  # top cap faces +z
    for i in range(n):
        j = (i + 1) % n
        # Side quad (i, j, j+n, i+n), outward for CCW profiles.
        faces.append([i, j, n + j])
        faces.append([i, n + j, n + i])
    return TriangleMesh(verts, np.asarray(faces, dtype=np.int64), name=name)


def prism(n_sides: int, radius: float, height: float, phase: float = 0.0) -> TriangleMesh:
    """Regular n-gonal prism centered on the Z axis, base at z=0."""
    mesh = extrude_polygon(regular_polygon(n_sides, radius, phase), height, name=f"prism{n_sides}")
    return mesh


def cylinder(radius: float, height: float, segments: int = 32) -> TriangleMesh:
    """Closed circular cylinder (approximated by a regular prism)."""
    if segments < 3:
        raise MeshError(f"cylinder needs >=3 segments, got {segments}")
    mesh = prism(segments, radius, height)
    mesh.name = "cylinder"
    return mesh


def frustum(
    radius_bottom: float, radius_top: float, height: float, segments: int = 32
) -> TriangleMesh:
    """Conical frustum on the Z axis; ``radius_top=0`` yields a cone."""
    if radius_bottom <= 0 or radius_top < 0:
        raise MeshError("frustum radii must be positive (top may be zero)")
    if height <= 0:
        raise MeshError(f"height must be positive, got {height}")
    if segments < 3:
        raise MeshError(f"need >=3 segments, got {segments}")

    bottom = regular_polygon(segments, radius_bottom)
    verts = [np.column_stack([bottom, np.zeros(segments)])]
    faces = []
    tris = triangulate_polygon(bottom)
    for a, b, c in tris:
        faces.append([a, c, b])  # bottom cap faces -z

    if radius_top > 0:
        top = regular_polygon(segments, radius_top)
        verts.append(np.column_stack([top, np.full(segments, float(height))]))
        for a, b, c in tris:
            faces.append([segments + a, segments + b, segments + c])
        for i in range(segments):
            j = (i + 1) % segments
            faces.append([i, j, segments + j])
            faces.append([i, segments + j, segments + i])
        name = "frustum"
    else:
        apex = segments
        verts.append(np.array([[0.0, 0.0, float(height)]]))
        for i in range(segments):
            j = (i + 1) % segments
            faces.append([i, j, apex])
        name = "cone"
    mesh = TriangleMesh(np.vstack(verts), np.asarray(faces, dtype=np.int64), name=name)
    return mesh


def cone(radius: float, height: float, segments: int = 32) -> TriangleMesh:
    """Closed cone with apex on +Z."""
    return frustum(radius, 0.0, height, segments)


def annular_prism(
    outer_profile: Sequence[Sequence[float]],
    inner_profile: Sequence[Sequence[float]],
    height: float,
    name: str = "annular_prism",
) -> TriangleMesh:
    """Extrude the region between two nested simple polygons.

    Both profiles must have the same vertex count and be "radially matched"
    (vertex i of the inner ring lies between the spokes of vertices i and
    i+1 of the outer ring, as with concentric regular polygons or
    concentric rectangles).  The inner wall is wound so its normals face the
    hole, keeping the solid outward-oriented.
    """
    outer = ensure_ccw(outer_profile)
    inner = ensure_ccw(inner_profile)
    if len(outer) != len(inner):
        raise MeshError(
            f"profiles must match in length, got {len(outer)} and {len(inner)}"
        )
    if height <= 0:
        raise MeshError(f"height must be positive, got {height}")
    n = len(outer)
    # Vertex layout: outer-bottom [0,n), inner-bottom [n,2n),
    # outer-top [2n,3n), inner-top [3n,4n).
    verts = np.vstack(
        [
            np.column_stack([outer, np.zeros(n)]),
            np.column_stack([inner, np.zeros(n)]),
            np.column_stack([outer, np.full(n, float(height))]),
            np.column_stack([inner, np.full(n, float(height))]),
        ]
    )
    faces = []
    for i in range(n):
        j = (i + 1) % n
        # Outer wall, outward.
        faces.append([i, j, 2 * n + j])
        faces.append([i, 2 * n + j, 2 * n + i])
        # Inner wall, facing the hole.
        faces.append([n + i, 3 * n + j, n + j])
        faces.append([n + i, 3 * n + i, 3 * n + j])
        # Bottom annulus, facing -z.
        faces.append([i, n + j, j])
        faces.append([i, n + i, n + j])
        # Top annulus, facing +z.
        faces.append([2 * n + i, 2 * n + j, 3 * n + j])
        faces.append([2 * n + i, 3 * n + j, 3 * n + i])
    return TriangleMesh(verts, np.asarray(faces, dtype=np.int64), name=name)


def tube(
    radius_outer: float, radius_inner: float, height: float, segments: int = 32
) -> TriangleMesh:
    """Annular cylinder (washer/bushing) with a genuine through-hole.

    Enclosed volume is pi*(ro^2 - ri^2)*h in the polygonal approximation.
    """
    if not 0 < radius_inner < radius_outer:
        raise MeshError(
            f"need 0 < inner < outer radius, got {radius_inner}, {radius_outer}"
        )
    if segments < 3:
        raise MeshError(f"need >=3 segments, got {segments}")
    return annular_prism(
        regular_polygon(segments, radius_outer),
        regular_polygon(segments, radius_inner),
        height,
        name="tube",
    )


def hex_nut(
    across_flats: float, bore_radius: float, height: float, bore_segments: int = 6
) -> TriangleMesh:
    """Hexagonal nut: hex prism outer profile with a round (polygonal) bore.

    ``bore_segments`` must equal 6 or a multiple of 6 is resampled down to 6
    spokes to stay radially matched with the hex outline; the default bore
    is hexagonal, which suffices for moment/skeleton features.
    """
    if across_flats <= 0:
        raise MeshError("across_flats must be positive")
    circum_radius = across_flats / np.sqrt(3.0)
    if not 0 < bore_radius < across_flats / 2.0:
        raise MeshError("bore must fit strictly inside the hex flats")
    outer = regular_polygon(6, circum_radius)
    inner = regular_polygon(6, bore_radius)
    return annular_prism(outer, inner, height, name="hex_nut")


def uv_sphere(radius: float, n_lat: int = 16, n_lon: int = 32) -> TriangleMesh:
    """UV sphere centered at the origin."""
    if radius <= 0:
        raise MeshError(f"radius must be positive, got {radius}")
    if n_lat < 2 or n_lon < 3:
        raise MeshError("need n_lat >= 2 and n_lon >= 3")
    verts = [np.array([0.0, 0.0, radius])]
    for i in range(1, n_lat):
        theta = np.pi * i / n_lat
        z = radius * np.cos(theta)
        r = radius * np.sin(theta)
        for j in range(n_lon):
            phi = 2.0 * np.pi * j / n_lon
            verts.append(np.array([r * np.cos(phi), r * np.sin(phi), z]))
    verts.append(np.array([0.0, 0.0, -radius]))
    verts = np.vstack(verts)

    faces = []
    south = len(verts) - 1

    def ring_index(ring: int, j: int) -> int:
        return 1 + ring * n_lon + (j % n_lon)

    for j in range(n_lon):  # north cap
        faces.append([0, ring_index(0, j), ring_index(0, j + 1)])
    for ring in range(n_lat - 2):  # body quads
        for j in range(n_lon):
            a = ring_index(ring, j)
            b = ring_index(ring, j + 1)
            c = ring_index(ring + 1, j + 1)
            d = ring_index(ring + 1, j)
            faces.append([a, d, c])
            faces.append([a, c, b])
    for j in range(n_lon):  # south cap
        faces.append([south, ring_index(n_lat - 2, j + 1), ring_index(n_lat - 2, j)])
    return TriangleMesh(verts, np.asarray(faces, dtype=np.int64), name="sphere")


def torus(
    radius_major: float, radius_minor: float, n_major: int = 32, n_minor: int = 16
) -> TriangleMesh:
    """Torus around the Z axis (tube center circle radius ``radius_major``)."""
    if not 0 < radius_minor < radius_major:
        raise MeshError(
            f"need 0 < minor < major radius, got {radius_minor}, {radius_major}"
        )
    if n_major < 3 or n_minor < 3:
        raise MeshError("need >=3 segments on both circles")
    verts = np.empty((n_major * n_minor, 3))
    for i in range(n_major):
        phi = 2.0 * np.pi * i / n_major
        center = np.array([radius_major * np.cos(phi), radius_major * np.sin(phi), 0.0])
        radial = np.array([np.cos(phi), np.sin(phi), 0.0])
        for j in range(n_minor):
            psi = 2.0 * np.pi * j / n_minor
            verts[i * n_minor + j] = (
                center
                + radius_minor * np.cos(psi) * radial
                + np.array([0.0, 0.0, radius_minor * np.sin(psi)])
            )
    faces = []
    for i in range(n_major):
        i2 = (i + 1) % n_major
        for j in range(n_minor):
            j2 = (j + 1) % n_minor
            a = i * n_minor + j
            b = i2 * n_minor + j
            c = i2 * n_minor + j2
            d = i * n_minor + j2
            faces.append([a, b, c])
            faces.append([a, c, d])
    return TriangleMesh(verts, np.asarray(faces, dtype=np.int64), name="torus")


def plate_with_rect_hole(
    width: float, depth: float, thickness: float, hole_width: float, hole_depth: float
) -> TriangleMesh:
    """Rectangular plate with a centered rectangular through-hole.

    Realized as an annular prism between two concentric rectangles, which
    keeps the solid watertight with a genuine through-hole.
    """
    if not (0 < hole_width < width and 0 < hole_depth < depth):
        raise MeshError("hole must be strictly inside the plate")
    from .polygon import rectangle

    mesh = annular_prism(
        rectangle(width, depth),
        rectangle(hole_width, hole_depth),
        thickness,
        name="plate_with_hole",
    )
    return mesh


def expected_prism_volume(profile: Sequence[Sequence[float]], height: float) -> float:
    """Analytic volume of an extruded profile (for tests)."""
    return abs(polygon_area(profile)) * float(height)
