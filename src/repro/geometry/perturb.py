"""Mesh perturbation: synthetic scan noise.

Real queries are often scans or re-exports of a catalog part; their
vertices wobble.  `jitter_vertices` displaces every vertex by seeded
Gaussian noise (optionally along the vertex normal, which mimics scanner
depth error) so robustness experiments can ask: given a noisy copy, does
the system still retrieve the original?
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..robust.errors import InvalidParameterError
from .mesh import MeshError, TriangleMesh


def vertex_normals(mesh: TriangleMesh) -> np.ndarray:
    """Area-weighted vertex normals, shape (n, 3); zero where undefined."""
    face_raw = mesh.face_normals(normalized=False)
    normals = np.zeros((mesh.n_vertices, 3))
    for col in range(3):
        np.add.at(normals, mesh.faces[:, col], face_raw)
    lengths = np.linalg.norm(normals, axis=1)
    ok = lengths > 1e-300
    normals[ok] /= lengths[ok, None]
    return normals


def jitter_vertices(
    mesh: TriangleMesh,
    amplitude: float,
    rng: Optional[np.random.Generator] = None,
    along_normals: bool = True,
) -> TriangleMesh:
    """Displace vertices by Gaussian noise of the given std deviation.

    ``amplitude`` is relative to the longest bounding-box axis, so 0.01
    means ~1% geometric noise regardless of model scale.  With
    ``along_normals`` the displacement is purely radial (scanner-like);
    otherwise it is isotropic.
    """
    if mesh.n_vertices == 0:
        raise MeshError("cannot perturb an empty mesh")
    if amplitude < 0:
        raise InvalidParameterError(
            f"amplitude must be >= 0, got {amplitude}",
            code="usage.bad_amplitude",
        )
    gen = rng if rng is not None else np.random.default_rng()
    scale = amplitude * float(mesh.extents().max())
    if along_normals:
        offsets = vertex_normals(mesh) * gen.normal(
            scale=scale, size=(mesh.n_vertices, 1)
        )
    else:
        offsets = gen.normal(scale=scale, size=(mesh.n_vertices, 3))
    return TriangleMesh(mesh.vertices + offsets, mesh.faces, name=mesh.name)
