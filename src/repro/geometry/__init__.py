"""Geometry substrate: triangle meshes, I/O, primitives, transforms.

This package replaces the ACIS kernel + CAD files the paper's prototype
consumed; see DESIGN.md section 2 for the substitution rationale.
"""

from .composite import Placement, assemble
from .decimate import decimate
from .io import load_mesh, save_mesh, supported_formats
from .io_obj import load_obj, save_obj
from .io_off import load_off, save_off
from .io_ply import load_ply, save_ply
from .io_stl import load_stl, save_stl
from .mesh import MeshError, TriangleMesh
from .polygon import (
    PolygonError,
    ensure_ccw,
    polygon_area,
    rectangle,
    regular_polygon,
    triangulate_polygon,
)
from .primitives import (
    annular_prism,
    box,
    cone,
    cylinder,
    extrude_polygon,
    frustum,
    hex_nut,
    plate_with_rect_hole,
    prism,
    torus,
    tube,
    uv_sphere,
)
from .perturb import jitter_vertices, vertex_normals
from .revolve import pappus_volume, surface_of_revolution
from .repair import (
    MeshReport,
    fix_orientation,
    remove_degenerate_faces,
    repair_mesh,
    validate_mesh,
)
from .properties import (
    aspect_ratios,
    centroid,
    signed_volume,
    surface_area,
    surface_centroid,
    surface_to_volume_ratio,
    volume,
)
from .transform import (
    compose,
    random_rotation,
    rotate,
    rotation_about_axis,
    rotation_matrix4,
    scale,
    scale_matrix,
    transform,
    translate,
    translation_matrix,
)

__all__ = [
    "TriangleMesh",
    "MeshError",
    "PolygonError",
    "Placement",
    "assemble",
    "decimate",
    "repair_mesh",
    "fix_orientation",
    "remove_degenerate_faces",
    "validate_mesh",
    "MeshReport",
    "surface_of_revolution",
    "pappus_volume",
    "jitter_vertices",
    "vertex_normals",
    "load_mesh",
    "save_mesh",
    "supported_formats",
    "load_off",
    "save_off",
    "load_ply",
    "save_ply",
    "load_stl",
    "save_stl",
    "load_obj",
    "save_obj",
    "polygon_area",
    "ensure_ccw",
    "triangulate_polygon",
    "regular_polygon",
    "rectangle",
    "box",
    "extrude_polygon",
    "prism",
    "cylinder",
    "frustum",
    "cone",
    "tube",
    "annular_prism",
    "hex_nut",
    "plate_with_rect_hole",
    "uv_sphere",
    "torus",
    "surface_area",
    "volume",
    "signed_volume",
    "centroid",
    "surface_centroid",
    "aspect_ratios",
    "surface_to_volume_ratio",
    "translate",
    "scale",
    "rotate",
    "transform",
    "rotation_about_axis",
    "random_rotation",
    "compose",
    "translation_matrix",
    "scale_matrix",
    "rotation_matrix4",
]
