"""Integration tests: the paper's experiments on the evaluation corpus.

These are the headline reproduction checks — the *shape* of the paper's
results must hold: feature-vector ordering, multi-step superiority,
degenerate eigenvalue curves, index efficiency.
"""

import numpy as np
import pytest

from repro.evaluation import (
    FEATURE_ORDER,
    exp_average_recall,
    exp_effectiveness_at_10,
    exp_group_sizes,
    exp_multistep_example,
    exp_pr_curves,
    exp_rtree_efficiency,
    exp_threshold_example,
    one_query_per_group,
)


@pytest.fixture(scope="module")
def fig15(eval_db, eval_engine):
    return exp_average_recall(eval_db, eval_engine)


class TestFig4:
    def test_profile(self, eval_db):
        result = exp_group_sizes(eval_db)
        assert result.n_groups == 26
        assert result.n_grouped_shapes == 86
        assert result.n_noise == 27
        assert result.sizes_ascending[0] == 2
        assert result.sizes_ascending[-1] == 8
        assert "FIG4" in result.format()


class TestFig7:
    def test_calibrated_example(self, eval_db, eval_engine):
        result = exp_threshold_example(eval_db, eval_engine)
        assert result.calibrated
        assert len(result.retrieved) >= 1
        assert 0.0 < result.threshold < 1.0
        assert result.precision > 0.0

    def test_explicit_threshold(self, eval_db, eval_engine):
        result = exp_threshold_example(eval_db, eval_engine, threshold=0.5)
        assert not result.calibrated
        assert result.threshold == 0.5


class TestFig8to12:
    def test_all_twenty_curves_present(self, eval_db, eval_engine):
        result = exp_pr_curves(eval_db, eval_engine)
        assert len(result.queries) == 5
        assert len(result.curves) == 20
        assert len(set(result.query_groups)) == 5

    def test_eigenvalues_weakest_descriptor(self, eval_db, eval_engine):
        from repro.evaluation.pr_curve import interpolated_precision

        result = exp_pr_curves(eval_db, eval_engine)
        levels = np.linspace(0, 1, 11)

        def mean_ap(fname):
            return np.mean(
                [
                    interpolated_precision(result.curves[(q, fname)], levels).mean()
                    for q in result.queries
                ]
            )

        assert mean_ap("eigenvalues") <= mean_ap("principal_moments")


class TestFig13_14:
    def test_example_shows_multistep_win(self, eval_db, eval_engine):
        result = exp_multistep_example(eval_db, eval_engine)
        assert result.multistep_recall > result.one_shot_recall
        assert "multi-step" in result.format()


class TestFig15:
    def test_paper_feature_ordering(self, fig15):
        assert fig15.ordering("group_size") == [
            "principal_moments",
            "moment_invariants",
            "geometric_params",
            "eigenvalues",
        ]

    def test_ordering_consistent_at_10(self, fig15):
        assert fig15.ordering("at_10") == fig15.ordering("group_size")

    def test_multistep_beats_every_one_shot(self, fig15):
        best = max(fig15.recall_at_group_size.values())
        assert fig15.multistep_user_guided[0] > best
        assert fig15.multistep_fixed[0] >= best

    def test_multistep_gain_positive(self, fig15):
        fixed_gain, guided_gain = fig15.multistep_gain_over_best()
        assert fixed_gain >= 0.0
        assert guided_gain > 0.25  # paper reports +51%

    def test_recalls_in_unit_interval(self, fig15):
        for series in (fig15.recall_at_group_size, fig15.recall_at_10):
            for value in series.values():
                assert 0.0 <= value <= 1.0

    def test_all_26_queries_used(self, fig15, eval_db):
        assert fig15.n_queries == 26
        assert len(one_query_per_group(eval_db)) == 26

    def test_format_mentions_paper_statistic(self, fig15):
        assert "51%" in fig15.format()


class TestFig16:
    def test_precision_scaled_from_recall(self, eval_db, eval_engine):
        """The paper notes precisions at |R|=10 look like scaled recalls
        because group sizes are below 10."""
        result = exp_effectiveness_at_10(eval_db, eval_engine)
        for fname in FEATURE_ORDER:
            assert result.precision[fname] < result.recall[fname]
        ordering_p = sorted(result.precision, key=result.precision.get)
        ordering_r = sorted(result.recall, key=result.recall.get)
        assert ordering_p == ordering_r

    def test_multistep_among_best(self, eval_db, eval_engine):
        result = exp_effectiveness_at_10(eval_db, eval_engine)
        best_recall = max(result.recall.values())
        assert result.multistep_recall >= 0.9 * best_recall


class TestRTreeEfficiency:
    def test_speedup_grows_with_size(self, eval_db):
        result = exp_rtree_efficiency(
            eval_db, synthetic_sizes=(500, 4000), n_queries=5
        )
        speedups = [row.speedup for row in result.rows]
        assert speedups[-1] > speedups[1] > 0.5
        assert result.rows[0].label.startswith("real")

    def test_rows_capture_sizes(self, eval_db):
        result = exp_rtree_efficiency(eval_db, synthetic_sizes=(300,), n_queries=3)
        assert [row.n_points for row in result.rows] == [113, 300]


class TestGroupDifficulty:
    def test_covers_all_groups(self, eval_db, eval_engine):
        from repro.evaluation import exp_group_difficulty

        result = exp_group_difficulty(eval_db, eval_engine)
        assert len(result.recall) == 26
        for per_feature in result.recall.values():
            assert set(per_feature) == set(FEATURE_ORDER)
            for value in per_feature.values():
                assert 0.0 <= value <= 1.0

    def test_hardest_groups_sorted(self, eval_db, eval_engine):
        from repro.evaluation import exp_group_difficulty

        result = exp_group_difficulty(eval_db, eval_engine)
        hardest = result.hardest_groups("principal_moments", n=3)
        values = [result.recall[g]["principal_moments"] for g in hardest]
        assert values == sorted(values)
        assert "EXT-GROUPS" in result.format()
