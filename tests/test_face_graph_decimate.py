"""Face-adjacency graphs and mesh decimation."""

import numpy as np
import pytest

from repro.descriptors import face_graph_descriptor, segment_faces
from repro.geometry import (
    MeshError,
    TriangleMesh,
    box,
    cylinder,
    decimate,
    extrude_polygon,
    random_rotation,
    rotate,
    uv_sphere,
    volume,
)


class TestSegmentation:
    def test_box_has_six_patches(self, unit_box):
        graph = segment_faces(unit_box)
        assert graph.n_patches == 6
        assert len(graph.contacts) == 12  # cube face adjacencies
        assert all(p.is_planar for p in graph.patches)

    def test_l_profile_has_eight_patches(self, l_bracket):
        graph = segment_faces(l_bracket)
        assert graph.n_patches == 8

    def test_cylinder_wall_merges_with_loose_tolerance(self):
        mesh = cylinder(1.0, 3.0, 48)
        tight = segment_faces(mesh, angle_tolerance=np.deg2rad(4))
        loose = segment_faces(mesh, angle_tolerance=np.deg2rad(40))
        assert loose.n_patches < tight.n_patches

    def test_patch_areas_sum_to_surface(self, unit_box):
        graph = segment_faces(unit_box)
        assert sum(p.area for p in graph.patches) == pytest.approx(6.0)

    def test_adjacency_matrix_symmetric(self, l_bracket):
        mat = segment_faces(l_bracket).adjacency_matrix()
        assert np.allclose(mat, mat.T)
        assert np.trace(mat) == pytest.approx(1.0)  # area fractions

    def test_empty_mesh_rejected(self):
        with pytest.raises(MeshError):
            segment_faces(TriangleMesh([], []))
        with pytest.raises(ValueError):
            segment_faces(box((1, 1, 1)), angle_tolerance=0.0)


class TestFaceGraphDescriptor:
    def test_fixed_length_finite(self, l_bracket):
        vec = face_graph_descriptor(l_bracket)
        assert vec.shape == (12,)
        assert np.isfinite(vec).all()

    def test_distinguishes_topologies(self):
        a = face_graph_descriptor(box((2, 2, 2)))
        b = face_graph_descriptor(cylinder(1, 2, 32))
        assert not np.allclose(a, b, atol=1e-3)

    def test_similar_boxes_close(self):
        a = face_graph_descriptor(box((2, 3, 4)))
        b = face_graph_descriptor(box((2.1, 3.1, 3.9)))
        c = face_graph_descriptor(uv_sphere(1.5, 12, 24))
        assert np.linalg.norm(a - b) < np.linalg.norm(a - c)

    def test_dim_validation(self, unit_box):
        with pytest.raises(ValueError):
            face_graph_descriptor(unit_box, dim=3)

    def test_registered_extractor(self, l_bracket):
        from repro.features import FeaturePipeline

        pipe = FeaturePipeline(feature_names=["face_graph"], voxel_resolution=12)
        vec = pipe.extract_one(l_bracket, "face_graph")
        assert vec.shape == (12,)


class TestDecimate:
    def test_reduces_face_count(self):
        dense = uv_sphere(1.0, 32, 64)
        slim = decimate(dense, grid=12)
        assert slim.n_faces < dense.n_faces / 3

    def test_volume_approximately_preserved(self):
        dense = uv_sphere(1.0, 32, 64)
        slim = decimate(dense, grid=16)
        assert volume(slim) == pytest.approx(volume(dense), rel=0.05)

    def test_stays_watertight_for_reasonable_cells(self):
        dense = uv_sphere(1.0, 24, 48)
        assert decimate(dense, grid=12).is_watertight()

    def test_explicit_cell_size(self, asym_box):
        out = decimate(asym_box, cell_size=10.0)  # one cell: degenerate
        assert out.n_faces == 0

    def test_coarse_box_unchanged_vertices(self, unit_box):
        out = decimate(unit_box, grid=8)
        assert out.n_vertices == unit_box.n_vertices  # corners in own cells
        assert volume(out) == pytest.approx(1.0)

    def test_validation(self, unit_box):
        with pytest.raises(ValueError):
            decimate(unit_box, cell_size=-1.0)
        with pytest.raises(ValueError):
            decimate(unit_box, grid=1)
        with pytest.raises(MeshError):
            decimate(TriangleMesh([], []))

    def test_feature_stability_after_decimation(self, rng):
        from repro.moments import moment_invariants

        dense = rotate(uv_sphere(1.0, 32, 64), random_rotation(rng))
        slim = decimate(dense, grid=20)
        assert np.allclose(
            moment_invariants(slim), moment_invariants(dense), rtol=0.05
        )
