"""Skeleton spur pruning and the software renderer."""

import numpy as np
import pytest

from repro.geometry import MeshError, TriangleMesh, box, cylinder, torus
from repro.skeleton import build_skeletal_graph, prune_spurs, thin
from repro.viewer import (
    load_ppm,
    render_mesh,
    render_results_strip,
    render_to_svg,
    save_ppm,
)
from repro.voxel import VoxelGrid, voxelize


def line_with_spur(spur_len: int) -> VoxelGrid:
    occ = np.zeros((15, 15, 3), dtype=bool)
    occ[1:13, 7, 1] = True
    if spur_len:
        occ[6, 8 : 8 + spur_len, 1] = True
    return VoxelGrid(occ)


class TestPruneSpurs:
    def test_short_spur_removed(self):
        pruned = prune_spurs(line_with_spur(2), min_length=3)
        sg = build_skeletal_graph(pruned)
        assert sg.n_nodes == 1
        assert sg.type_counts()["line"] == 1

    def test_long_branch_kept(self):
        grid = line_with_spur(5)
        pruned = prune_spurs(grid, min_length=3)
        assert pruned.n_occupied == grid.n_occupied

    def test_loop_never_pruned(self):
        occ = np.zeros((11, 11, 3), dtype=bool)
        for x in range(11):
            for y in range(11):
                if abs(x - 5) + abs(y - 5) == 4:
                    occ[x, y, 1] = True
        grid = VoxelGrid(occ)
        pruned = prune_spurs(grid, min_length=6)
        assert pruned.n_occupied == grid.n_occupied

    def test_isolated_chain_kept(self):
        occ = np.zeros((10, 5, 3), dtype=bool)
        occ[2:5, 2, 1] = True  # 3-voxel free-standing chain
        pruned = prune_spurs(VoxelGrid(occ), min_length=5)
        assert pruned.n_occupied == 3

    def test_metadata_preserved(self):
        grid = VoxelGrid(
            line_with_spur(2).occupancy, origin=(1, 2, 3), spacing=0.5
        )
        pruned = prune_spurs(grid)
        assert pruned.spacing == 0.5
        assert np.allclose(pruned.origin, [1, 2, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            prune_spurs(line_with_spur(1), min_length=0)

    def test_pipeline_option(self):
        from repro.features import FeaturePipeline

        pipe = FeaturePipeline(
            feature_names=["eigenvalues"],
            voxel_resolution=16,
            prune_spur_length=3,
        )
        vec = pipe.extract_one(box((6, 2, 2)), "eigenvalues")
        assert np.isfinite(vec).all()

    def test_real_skeleton_not_enlarged(self):
        grid = voxelize(box((8, 2, 2)), resolution=16)
        skel = thin(grid)
        pruned = prune_spurs(skel, min_length=3)
        assert pruned.n_occupied <= skel.n_occupied


class TestRenderer:
    def test_image_shape_and_content(self, unit_box):
        img = render_mesh(unit_box, size=64)
        assert img.shape == (64, 64, 3)
        assert img.dtype == np.uint8
        background = np.array([24, 26, 30], dtype=np.uint8)
        silhouette = (img != background).any(axis=2)
        assert 0.05 < silhouette.mean() < 0.95

    def test_ppm_roundtrip(self, unit_box, tmp_path):
        img = render_mesh(unit_box, size=48)
        path = tmp_path / "thumb.ppm"
        save_ppm(img, path)
        assert np.array_equal(load_ppm(path), img)

    def test_svg_output(self, tmp_path):
        path = tmp_path / "thumb.svg"
        render_to_svg(torus(2.0, 0.5, 16, 8), path, size=96)
        text = path.read_text()
        assert text.startswith("<svg")
        assert "<polygon" in text

    def test_results_strip(self, tmp_path):
        path = tmp_path / "strip.ppm"
        strip = render_results_strip(
            [box((1, 2, 3)), cylinder(1, 3, 12)], path, thumb=32
        )
        assert strip.shape == (32, 64, 3)
        assert path.exists()

    def test_empty_mesh_rejected(self):
        with pytest.raises(MeshError):
            render_mesh(TriangleMesh([], []))
        with pytest.raises(ValueError):
            render_mesh(box((1, 1, 1)), size=4)

    def test_bad_ppm_rejected(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValueError):
            load_ppm(path)

    def test_strip_needs_meshes(self, tmp_path):
        with pytest.raises(ValueError):
            render_results_strip([], tmp_path / "x.ppm")
