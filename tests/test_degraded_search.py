"""Degraded-mode search: mixed full/partial records stay queryable.

A degraded record carries only the feature vectors that extracted
successfully (e.g. the three geometry-derived ones when skeletonization
fails).  Search must neither raise ``KeyError`` nor silently drop such
records from plans that touch a feature they lack.
"""

import numpy as np
import pytest

from repro.db import ShapeDatabase
from repro.features import FeaturePipeline
from repro.geometry.primitives import box, cylinder, tube
from repro.robust import SkeletonizationError
from repro.search.combined import CombinedSimilarity, combined_search
from repro.search.engine import SearchEngine
from repro.search.multistep import MultiStepPlan, multi_step_search

RES = 10


@pytest.fixture
def mixed_db(monkeypatch):
    """Six shapes: ids 1-4 full, ids 5-6 degraded (no skeleton features)."""
    db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
    full = [
        (box((2, 1, 1)), "box_a"),
        (box((2.2, 1, 1)), "box_b"),
        (cylinder(1, 3, segments=12), "rod"),
        (tube(1.2, 0.7, 2, segments=12), "bush"),
    ]
    result = db.insert_meshes(
        [m for m, _ in full], names=[n for _, n in full]
    )
    assert not result.errors and not result.degraded_ids

    import repro.features.base as base

    def broken_thin(voxels):
        raise SkeletonizationError("injected", code="skeleton.no_convergence")

    monkeypatch.setattr(base, "thin", broken_thin)
    degraded = [
        (box((2.1, 1, 1)), "box_degraded"),
        (cylinder(1.1, 3, segments=12), "rod_degraded"),
    ]
    result = db.insert_meshes(
        [m for m, _ in degraded], names=[n for _, n in degraded]
    )
    assert result.degraded_ids == [5, 6]
    monkeypatch.undo()
    return db


class TestKnnOverMixedRecords:
    def test_carried_feature_returns_degraded_records(self, mixed_db):
        engine = SearchEngine(mixed_db)
        results = engine.search_knn(1, "moment_invariants", k=5)
        ids = [r.shape_id for r in results]
        # box_degraded (id 5) carries moment_invariants and is the
        # geometry closest to box_a: it must surface.
        assert 5 in ids

    def test_missing_feature_space_excludes_degraded(self, mixed_db):
        engine = SearchEngine(mixed_db)
        results = engine.search_knn(1, "eigenvalues", k=10)
        ids = {r.shape_id for r in results}
        assert ids <= {2, 3, 4}  # degraded ids 5, 6 carry no eigenvalues

    def test_degraded_query_record_searchable_on_carried_feature(self, mixed_db):
        engine = SearchEngine(mixed_db)
        results = engine.search_knn(5, "geometric_params", k=3)
        assert results, "degraded records must be usable as queries"
        assert all(r.shape_id != 5 for r in results)


class TestRerankOverMixedRecords:
    def test_degraded_candidates_ranked_last_not_dropped(self, mixed_db):
        engine = SearchEngine(mixed_db)
        results = engine.rerank([2, 5, 3, 6], 1, "eigenvalues")
        ids = [r.shape_id for r in results]
        assert set(ids) == {2, 5, 3, 6}, "no candidate may be dropped"
        # Records lacking the rerank feature sort after every record
        # carrying it, in stable id order, at similarity zero.
        assert ids[-2:] == [5, 6]
        assert results[-1].similarity == 0.0
        assert results[-2].similarity == 0.0

    def test_rerank_deterministic(self, mixed_db):
        engine = SearchEngine(mixed_db)
        first = [r.shape_id for r in engine.rerank([6, 3, 5, 2], 1, "eigenvalues")]
        second = [r.shape_id for r in engine.rerank([6, 3, 5, 2], 1, "eigenvalues")]
        assert first == second

    def test_multistep_over_mixed_records(self, mixed_db):
        engine = SearchEngine(mixed_db)
        plan = MultiStepPlan(
            steps=[("moment_invariants", 5), ("eigenvalues", 4)]
        )
        results = multi_step_search(engine, 1, plan)
        assert results
        ranks = [r.rank for r in results]
        assert ranks == list(range(1, len(results) + 1))
        # Run twice: deterministic order over mixed records.
        again = multi_step_search(engine, 1, plan)
        assert [r.shape_id for r in results] == [r.shape_id for r in again]


class TestCombinedOverMixedRecords:
    def test_weights_renormalized_over_carried_features(self, mixed_db):
        engine = SearchEngine(mixed_db)
        combo = CombinedSimilarity.uniform(
            ["moment_invariants", "geometric_params", "eigenvalues"]
        )
        results = combined_search(engine, 1, combo, k=6)
        ids = {r.shape_id for r in results}
        assert 5 in ids, "degraded record must be scored, not raise"
        # All similarities stay inside [0, 1] after renormalization.
        assert all(0.0 <= r.similarity <= 1.0 for r in results)

    def test_identical_geometry_scores_high_despite_degradation(self, mixed_db):
        # box_degraded differs from box_a only slightly; renormalized over
        # its carried features, it must beat the unrelated tube.
        engine = SearchEngine(mixed_db)
        combo = CombinedSimilarity.uniform(
            ["moment_invariants", "geometric_params", "eigenvalues"]
        )
        results = combined_search(engine, 1, combo, k=6)
        sims = {r.shape_id: r.similarity for r in results}
        assert sims[5] > sims[4]

    def test_combined_deterministic(self, mixed_db):
        engine = SearchEngine(mixed_db)
        combo = CombinedSimilarity.uniform(
            ["moment_invariants", "eigenvalues"]
        )
        first = [r.shape_id for r in combined_search(engine, 1, combo, k=6)]
        second = [r.shape_id for r in combined_search(engine, 1, combo, k=6)]
        assert first == second

    def test_record_with_none_of_the_features_scores_zero(self, mixed_db):
        from repro.db import ShapeRecord

        mixed_db.insert_record(
            ShapeRecord(
                shape_id=0,
                name="featureless",
                features={"extended_invariants": np.arange(1.0, 11.0)},
            )
        )
        engine = SearchEngine(mixed_db)
        combo = CombinedSimilarity.uniform(["moment_invariants"])
        results = combined_search(engine, 1, combo, k=10)
        sims = {r.shape_id: r.similarity for r in results}
        assert sims[7] == 0.0
