"""The repro.obs metrics layer: registry unit tests + pipeline integration."""

import time

import pytest

from repro import obs
from repro.obs import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture(autouse=True)
def clean_default_registry():
    """Keep the process-wide registry enabled and empty around each test."""
    obs.set_enabled(True)
    obs.reset()
    yield
    obs.set_enabled(True)
    obs.reset()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_identity_per_name(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_reset(self, registry):
        registry.counter("a").inc(3)
        registry.reset()
        assert registry.counter("a").value == 0

    def test_inc_by_name_convenience(self, registry):
        registry.inc("a")
        registry.inc("a", 2)
        assert registry.counter("a").value == 3


class TestGauge:
    def test_set_and_value(self, registry):
        g = registry.gauge("size")
        g.set(7)
        assert g.value == 7.0
        g.set(3)
        assert g.value == 3.0

    def test_reset(self, registry):
        registry.gauge("size").set(9)
        registry.reset()
        assert registry.gauge("size").value == 0.0


class TestHistogram:
    def test_aggregates_exact(self, registry):
        h = registry.histogram("lat")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 16.0
        assert h.mean == 4.0
        assert h.min == 1.0
        assert h.max == 10.0

    def test_percentiles(self, registry):
        h = registry.histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)

    def test_percentile_empty_and_single(self, registry):
        h = registry.histogram("lat")
        assert h.percentile(50) == 0.0
        h.observe(4.2)
        assert h.percentile(99) == 4.2

    def test_percentile_validates_range(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("lat").percentile(101)

    def test_reservoir_bounded(self, registry):
        h = registry.histogram("lat", reservoir=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100  # aggregates keep counting
        assert len(h._ring) == 8  # ring stays bounded
        assert h.percentile(0) >= 92.0  # only recent values remain

    def test_summary_keys(self, registry):
        h = registry.histogram("lat")
        h.observe(1.0)
        summary = h.summary()
        assert set(summary) == {
            "count", "total", "mean", "min", "max", "p50", "p90", "p99", "unit"
        }


class TestTimed:
    def test_context_manager_records(self, registry):
        with registry.timed("section"):
            time.sleep(0.001)
        h = registry.histogram("section")
        assert h.count == 1
        assert h.total >= 0.001

    def test_decorator_records_per_call(self, registry):
        @registry.timed("fn")
        def fn(x):
            return x * 2

        assert fn(3) == 6
        assert fn(4) == 8
        assert registry.histogram("fn").count == 2

    def test_decorator_records_on_exception(self, registry):
        @registry.timed("boom")
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            boom()
        assert registry.histogram("boom").count == 1

    def test_module_level_timed_uses_default_registry(self):
        with obs.timed("module.section"):
            pass
        assert obs.get_registry().histogram("module.section").count == 1


class TestDisabled:
    def test_counter_noop(self, registry):
        registry.disable()
        registry.counter("a").inc(5)
        assert registry.counter("a").value == 0

    def test_gauge_noop(self, registry):
        registry.disable()
        registry.gauge("g").set(3)
        assert registry.gauge("g").value == 0.0

    def test_histogram_noop(self, registry):
        registry.disable()
        registry.histogram("h").observe(1.0)
        assert registry.histogram("h").count == 0

    def test_timed_noop_then_reenable(self, registry):
        registry.disable()
        with registry.timed("s"):
            pass
        assert registry.histogram("s").count == 0
        registry.enable()
        with registry.timed("s"):
            pass
        assert registry.histogram("s").count == 1

    def test_decorator_honors_toggle_at_call_time(self, registry):
        @registry.timed("fn")
        def fn():
            return 1

        registry.disable()
        fn()
        assert registry.histogram("fn").count == 0
        registry.enable()
        fn()
        assert registry.histogram("fn").count == 1

    def test_values_survive_disable(self, registry):
        registry.counter("a").inc(2)
        registry.disable()
        assert registry.counter("a").value == 2


class TestSnapshotAndTable:
    def test_snapshot_structure(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert isinstance(snap["derived"], dict)

    def test_derived_cache_hit_rate(self, registry):
        registry.inc("cache.hits", 3)
        registry.inc("cache.misses", 1)
        assert registry.snapshot()["derived"]["cache.hit_rate"] == 0.75

    def test_derived_per_query_ratios(self, registry):
        registry.inc("search.queries", 2)
        registry.inc("search.candidates_examined", 10)
        registry.inc("index.rtree.node_accesses", 30)
        derived = registry.snapshot()["derived"]
        assert derived["search.candidates_per_query"] == 5.0
        assert derived["index.rtree.node_accesses_per_query"] == 15.0

    def test_render_table_empty(self, registry):
        assert registry.render_table() == "(no metrics recorded)"

    def test_render_table_sections(self, registry):
        registry.histogram("pipeline.voxelize").observe(0.01)
        registry.inc("cache.hits")
        registry.gauge("cache.size").set(4)
        table = registry.render_table()
        assert "pipeline.voxelize" in table
        assert "cache.hits" in table
        assert "cache.size" in table
        assert "ms" in table

    def test_registries_are_independent(self, registry):
        registry.counter("only.here").inc()
        assert "only.here" not in obs.snapshot()["counters"]


class TestSystemIntegration:
    """One real insert + query populates the documented metric names."""

    # Names OBSERVABILITY.md promises after an insert + knn search
    # with the feature cache on and the paper's four feature vectors.
    EXPECTED_HISTOGRAMS = {
        "pipeline.extract",
        "pipeline.normalize",
        "pipeline.voxelize",
        "pipeline.skeletonize",
        "pipeline.skeletal_graph",
        "pipeline.feature.eigenvalues",
        "pipeline.feature.moment_invariants",
        "search.knn",
        "system.insert",
        "system.query",
    }
    EXPECTED_COUNTERS = {
        "cache.hits",
        "cache.misses",
        "index.rtree.node_accesses",
        "search.queries",
        "search.candidates_examined",
    }

    @pytest.fixture
    def stats(self):
        from repro import SystemConfig, ThreeDESS
        from repro.geometry import box, cylinder

        system = ThreeDESS(
            SystemConfig(voxel_resolution=10, feature_cache=True)
        )
        system.reset_stats()
        system.insert(box((2, 3, 4)), name="b1", group="boxes")
        system.insert(box((2, 3, 4)), name="b1_copy", group="boxes")
        system.insert(cylinder(1, 4, 16), name="c1")
        from repro.search.api import SearchRequest

        system.search(SearchRequest(query=box((2.1, 3, 4)), mode="knn", k=2))
        return system.stats()

    def test_histogram_names_populated(self, stats):
        populated = {
            name for name, s in stats["histograms"].items() if s["count"] > 0
        }
        assert self.EXPECTED_HISTOGRAMS <= populated

    def test_counter_names_populated(self, stats):
        populated = {name for name, v in stats["counters"].items() if v > 0}
        assert self.EXPECTED_COUNTERS <= populated

    def test_cache_hit_recorded(self, stats):
        assert stats["counters"]["cache.hits"] == 1
        assert stats["derived"]["cache.hit_rate"] == pytest.approx(0.25)

    def test_stage_timers_fire_once_per_extraction(self, stats):
        # 3 extractions (duplicate was a cache hit): 2 inserts + 1 query mesh.
        assert stats["histograms"]["pipeline.normalize"]["count"] == 3
        assert stats["histograms"]["pipeline.extract"]["count"] == 3

    def test_table_covers_acceptance_surface(self, stats):
        table = obs.render_table()
        assert "pipeline.skeletonize" in table
        assert "index.rtree.node_accesses" in table
        assert "cache.hit_rate" in table

    def test_metrics_disabled_records_nothing(self):
        from repro import SystemConfig, ThreeDESS
        from repro.geometry import box

        system = ThreeDESS(
            SystemConfig(voxel_resolution=10, metrics_enabled=False)
        )
        system.reset_stats()
        system.insert(box((2, 3, 4)))
        snap = system.stats()
        assert snap["enabled"] is False
        assert all(v == 0 for v in snap["counters"].values())
        assert all(s["count"] == 0 for s in snap["histograms"].values())

    def test_multistep_metrics(self):
        from repro import SystemConfig, ThreeDESS
        from repro.geometry import box
        from repro.search.api import SearchRequest

        system = ThreeDESS(SystemConfig(voxel_resolution=10))
        for dx in (0.0, 0.2, 0.4, 0.6):
            system.insert(box((2 + dx, 3, 4)), group="boxes")
        system.reset_stats()
        system.search(
            SearchRequest(
                query=1,
                mode="multi_step",
                steps=(("principal_moments", 3), ("geometric_params", 2)),
            )
        )
        # The multi_step shim now runs as a cascade, so the cascade
        # metrics (not the legacy search.multistep ones) account for it.
        snap = system.stats()
        assert snap["histograms"]["cascade.run"]["count"] == 1
        assert snap["counters"]["cascade.queries"] == 1
        assert snap["counters"]["cascade.exact_scans"] >= 1
        assert snap["histograms"]["search.rerank"]["count"] == 1


class TestCliStats:
    def test_stats_subcommand_prints_table(self, capsys):
        from repro.cli import main

        code = main(["stats", "--resolution", "10", "-k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pipeline.skeletonize" in out
        assert "cache.hits" in out
        assert "index.rtree.node_accesses" in out
        assert "cache.hit_rate" in out

    def test_query_profile_flag(self, tmp_path, capsys):
        from repro import SystemConfig, ThreeDESS
        from repro.cli import main
        from repro.geometry import box, save_mesh

        sys3d = ThreeDESS(SystemConfig(voxel_resolution=10))
        sys3d.insert(box((2, 3, 4)), name="b1", group="boxes")
        sys3d.insert(box((2.2, 3.1, 3.8)), name="b2", group="boxes")
        sys3d.save(tmp_path / "db")
        mesh_path = tmp_path / "query.off"
        save_mesh(box((2, 3, 4)), mesh_path)

        code = main(
            ["query", str(tmp_path / "db"), str(mesh_path), "-k", "1", "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "b1" in out  # the normal query output is intact
        assert "search.knn" in out
        # The default feature (principal_moments) only needs normalization,
        # so the extraction timers stop at that stage.
        assert "pipeline.normalize" in out
