"""Unit tests for 2D polygon utilities and ear clipping."""

import numpy as np
import pytest

from repro.geometry.polygon import (
    PolygonError,
    ensure_ccw,
    polygon_area,
    rectangle,
    regular_polygon,
    triangulate_polygon,
)


def _triangulation_area(points, triangles):
    pts = np.asarray(points, dtype=np.float64)
    total = 0.0
    for a, b, c in triangles:
        total += 0.5 * abs(
            (pts[b][0] - pts[a][0]) * (pts[c][1] - pts[a][1])
            - (pts[b][1] - pts[a][1]) * (pts[c][0] - pts[a][0])
        )
    return total


class TestArea:
    def test_unit_square_ccw(self):
        assert polygon_area([[0, 0], [1, 0], [1, 1], [0, 1]]) == pytest.approx(1.0)

    def test_unit_square_cw_negative(self):
        assert polygon_area([[0, 0], [0, 1], [1, 1], [1, 0]]) == pytest.approx(-1.0)

    def test_triangle(self):
        assert polygon_area([[0, 0], [2, 0], [0, 2]]) == pytest.approx(2.0)

    def test_too_few_points(self):
        with pytest.raises(PolygonError):
            polygon_area([[0, 0], [1, 1]])

    def test_ensure_ccw_flips_cw(self):
        cw = [[0, 0], [0, 1], [1, 1], [1, 0]]
        assert polygon_area(ensure_ccw(cw)) > 0

    def test_ensure_ccw_keeps_ccw(self):
        ccw = np.array([[0.0, 0], [1, 0], [1, 1], [0, 1]])
        assert np.array_equal(ensure_ccw(ccw), ccw)


class TestTriangulation:
    def test_triangle_passthrough(self):
        tris = triangulate_polygon([[0, 0], [1, 0], [0, 1]])
        assert tris == [(0, 1, 2)]

    def test_square(self):
        pts = [[0, 0], [1, 0], [1, 1], [0, 1]]
        tris = triangulate_polygon(pts)
        assert len(tris) == 2
        assert _triangulation_area(pts, tris) == pytest.approx(1.0)

    def test_l_shape(self):
        pts = [[0, 0], [3, 0], [3, 1], [1, 1], [1, 3], [0, 3]]
        tris = triangulate_polygon(pts)
        assert _triangulation_area(pts, tris) == pytest.approx(abs(polygon_area(pts)))

    def test_reversed_winding_covers_same_area(self):
        pts = [[0, 0], [3, 0], [3, 1], [1, 1], [1, 3], [0, 3]]
        rev = pts[::-1]
        tris = triangulate_polygon(rev)
        assert _triangulation_area(rev, tris) == pytest.approx(abs(polygon_area(pts)))

    def test_collinear_staircase_remainder(self):
        """Staircase corners are collinear; the zero-area remainder is
        fan-triangulated so the total covered area is still exact."""
        pts = [[0, 0], [6, 0], [6, 1.5], [4, 1.5], [4, 3], [2, 3], [2, 4.5], [0, 4.5]]
        tris = triangulate_polygon(pts)
        assert _triangulation_area(pts, tris) == pytest.approx(abs(polygon_area(pts)))

    def test_concave_comb(self):
        pts = [
            [0, 0], [7, 0], [7, 4], [6, 4], [6, 1], [5, 1], [5, 4],
            [4, 4], [4, 1], [3, 1], [3, 4], [0, 4],
        ]
        tris = triangulate_polygon(pts)
        assert _triangulation_area(pts, tris) == pytest.approx(abs(polygon_area(pts)))

    def test_all_triangles_ccw(self):
        pts = np.array([[0, 0], [3, 0], [3, 1], [1, 1], [1, 3], [0, 3]], dtype=float)
        for a, b, c in triangulate_polygon(pts):
            cross = (pts[b][0] - pts[a][0]) * (pts[c][1] - pts[a][1]) - (
                pts[b][1] - pts[a][1]
            ) * (pts[c][0] - pts[a][0])
            assert cross > 0

    def test_self_intersecting_does_not_crash(self):
        # Ear clipping does not validate simplicity; crossing input yields
        # some triangulation (garbage in, garbage out) rather than a hang.
        bowtie = [[0, 0], [2, 2], [2, 0], [0, 2]]
        tris = triangulate_polygon(bowtie)
        assert 1 <= len(tris) <= len(bowtie) - 2

    def test_too_few_points(self):
        with pytest.raises(PolygonError):
            triangulate_polygon([[0, 0], [1, 0]])


class TestGenerators:
    def test_regular_polygon_vertex_count(self):
        assert regular_polygon(6, 2.0).shape == (6, 2)

    def test_regular_polygon_radius(self):
        pts = regular_polygon(8, 3.0)
        assert np.allclose(np.linalg.norm(pts, axis=1), 3.0)

    def test_regular_polygon_is_ccw(self):
        assert polygon_area(regular_polygon(5, 1.0)) > 0

    def test_regular_polygon_phase(self):
        pts = regular_polygon(4, 1.0, phase=np.pi / 4)
        assert pts[0] == pytest.approx([np.sqrt(2) / 2, np.sqrt(2) / 2])

    def test_regular_polygon_errors(self):
        with pytest.raises(PolygonError):
            regular_polygon(2, 1.0)
        with pytest.raises(PolygonError):
            regular_polygon(4, -1.0)

    def test_rectangle(self):
        pts = rectangle(4.0, 2.0)
        assert polygon_area(pts) == pytest.approx(8.0)

    def test_rectangle_errors(self):
        with pytest.raises(PolygonError):
            rectangle(0.0, 1.0)
