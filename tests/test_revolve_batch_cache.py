"""Surface of revolution, batch scorer, and the feature cache."""

import numpy as np
import pytest

from repro.db import ShapeDatabase
from repro.features import CachingPipeline, FeaturePipeline, mesh_content_key
from repro.geometry import (
    MeshError,
    box,
    pappus_volume,
    surface_of_revolution,
    translate,
    volume,
)
from repro.search import BatchScorer, CombinedSimilarity, SearchEngine, combined_search


class TestRevolution:
    def test_cylinder_volume(self):
        prof = [[1.0, 0.0], [1.0, 2.0]]
        mesh = surface_of_revolution(prof, segments=128)
        assert volume(mesh) == pytest.approx(pappus_volume(prof), rel=1e-3)
        assert mesh.is_watertight()

    def test_cone_volume(self):
        prof = [[1.5, 0.0], [0.0, 3.0]]
        mesh = surface_of_revolution(prof, segments=128)
        assert volume(mesh) == pytest.approx(np.pi * 1.5**2, rel=1e-3)

    def test_stepped_shaft(self):
        prof = [[2.0, 0.0], [2.0, 1.0], [1.2, 1.0], [1.2, 3.0], [0.8, 3.0], [0.8, 5.0]]
        mesh = surface_of_revolution(prof, segments=96)
        assert mesh.is_watertight()
        assert volume(mesh) == pytest.approx(pappus_volume(prof), rel=5e-3)

    def test_sphere_like_profile(self):
        theta = np.linspace(0, np.pi, 24)
        prof = np.column_stack([np.sin(theta), -np.cos(theta)])
        mesh = surface_of_revolution(prof, segments=48)
        assert volume(mesh) == pytest.approx(4 / 3 * np.pi, rel=2e-2)
        assert mesh.is_watertight()

    def test_pappus_matches_known_values(self):
        assert pappus_volume([[2.0, 0.0], [2.0, 3.0]]) == pytest.approx(
            np.pi * 4 * 3
        )

    def test_validation(self):
        with pytest.raises(MeshError):
            surface_of_revolution([[1.0, 0.0]])
        with pytest.raises(MeshError):
            surface_of_revolution([[-1.0, 0.0], [1.0, 1.0]])
        with pytest.raises(MeshError):
            surface_of_revolution([[1.0, 0.0], [1.0, 1.0]], segments=2)


@pytest.fixture
def small_engine():
    db = ShapeDatabase(FeaturePipeline(voxel_resolution=12))
    db.insert_mesh(box((2, 3, 4)), group="a")
    db.insert_mesh(box((2.1, 3.1, 3.9)), group="a")
    db.insert_mesh(box((5, 5, 1)), group="b")
    db.insert_mesh(box((5.2, 4.9, 1.1)), group="b")
    return SearchEngine(db)


class TestBatchScorer:
    def test_distances_match_measure(self, small_engine):
        scorer = BatchScorer(small_engine)
        d, ids = scorer.distances(1, "principal_moments")
        measure = small_engine.measure("principal_moments")
        q = small_engine.database.get(1).feature("principal_moments")
        for dist, shape_id in zip(d, ids):
            stored = small_engine.database.get(shape_id).feature("principal_moments")
            assert dist == pytest.approx(measure.distance(q, stored))

    def test_combined_matches_scalar_path(self, small_engine):
        combo = CombinedSimilarity.uniform(
            ["principal_moments", "moment_invariants", "geometric_params"]
        )
        scorer = BatchScorer(small_engine)
        a = combined_search(small_engine, 1, combo, k=3)
        b = scorer.combined_search(1, combo, k=3)
        assert [r.shape_id for r in a] == [r.shape_id for r in b]
        assert np.allclose(
            [r.similarity for r in a], [r.similarity for r in b]
        )

    def test_similarities_bounded(self, small_engine):
        scorer = BatchScorer(small_engine)
        sims, _ = scorer.similarities(1, "geometric_params")
        assert ((sims >= 0) & (sims <= 1)).all()

    def test_k_validation(self, small_engine):
        scorer = BatchScorer(small_engine)
        with pytest.raises(ValueError):
            scorer.combined_search(1, CombinedSimilarity.uniform(["geometric_params"]), k=0)


class TestCachingPipeline:
    def test_hit_on_identical_geometry(self):
        cp = CachingPipeline(FeaturePipeline(voxel_resolution=10))
        mesh = box((2, 3, 4))
        first = cp.extract(mesh)
        second = cp.extract(mesh.copy())
        assert cp.hits == 1 and cp.misses == 1
        for name in first:
            assert np.array_equal(first[name], second[name])

    def test_miss_on_moved_geometry(self):
        cp = CachingPipeline(FeaturePipeline(voxel_resolution=10))
        mesh = box((2, 3, 4))
        cp.extract(mesh)
        cp.extract(translate(mesh, [1, 0, 0]))
        assert cp.misses == 2

    def test_key_includes_parameters(self):
        a = CachingPipeline(FeaturePipeline(voxel_resolution=10))
        b = CachingPipeline(FeaturePipeline(voxel_resolution=12))
        mesh = box((1, 1, 1))
        assert a._key(mesh) != b._key(mesh)

    def test_lru_eviction(self):
        cp = CachingPipeline(
            FeaturePipeline(feature_names=["geometric_params"], voxel_resolution=10),
            max_entries=2,
        )
        meshes = [box((1 + i * 0.1, 1, 1)) for i in range(3)]
        for mesh in meshes:
            cp.extract(mesh)
        cp.extract(meshes[0])  # evicted: must be a miss again
        assert cp.misses == 4

    def test_returned_arrays_are_copies(self):
        cp = CachingPipeline(
            FeaturePipeline(feature_names=["geometric_params"], voxel_resolution=10)
        )
        mesh = box((2, 2, 2))
        first = cp.extract(mesh)
        first["geometric_params"][0] = 999.0
        second = cp.extract(mesh)
        assert second["geometric_params"][0] != 999.0

    def test_usable_by_database(self):
        cp = CachingPipeline(FeaturePipeline(voxel_resolution=10))
        db = ShapeDatabase(cp)
        i1 = db.insert_mesh(box((2, 3, 4)))
        i2 = db.insert_mesh(box((2, 3, 4)))
        assert cp.hits == 1
        assert np.array_equal(
            db.get(i1).feature("principal_moments"),
            db.get(i2).feature("principal_moments"),
        )

    def test_content_key_sensitive_to_faces(self):
        mesh = box((1, 1, 1))
        other = mesh.flipped()
        assert mesh_content_key(mesh) != mesh_content_key(other)

    def test_validation(self):
        with pytest.raises(ValueError):
            CachingPipeline(FeaturePipeline(voxel_resolution=10), max_entries=0)
