"""Moment invariants F1-F3 and the higher-order extension."""

import numpy as np
import pytest

from repro.geometry import (
    box,
    cone,
    extrude_polygon,
    random_rotation,
    rotate,
    scale,
    translate,
    uv_sphere,
)
from repro.moments import (
    extended_moment_invariants,
    higher_order_invariants,
    invariants_from_matrix,
    moment_invariants,
    principal_moments,
)


@pytest.fixture
def asym_part():
    # Deliberately asymmetric so third-order invariants are non-trivial.
    return extrude_polygon(
        [[0, 0], [5, 0], [5, 1], [1, 1], [1, 2], [3, 2], [3, 3], [0, 3]], 0.8
    )


class TestSecondOrderInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_rigid_and_scale_invariance(self, asym_part, seed):
        rng = np.random.default_rng(seed)
        base = moment_invariants(asym_part)
        moved = translate(
            scale(rotate(asym_part, random_rotation(rng)), rng.uniform(0.3, 4.0)),
            rng.uniform(-20, 20, 3),
        )
        assert np.allclose(moment_invariants(moved), base, rtol=1e-7)

    def test_known_values_for_cube(self):
        # For a cube, I200 = I020 = I002 = (1/12) V^(5/3) / V^(5/3) ... the
        # normalized matrix is (1/12) I, so F1 = 1/4, F2 = 3/144, F3 = 1/1728.
        vals = moment_invariants(box((2, 2, 2)))
        assert vals[0] == pytest.approx(3 / 12)
        assert vals[1] == pytest.approx(3 / 144)
        assert vals[2] == pytest.approx(1 / 1728)

    def test_characteristic_coefficients_match_eigenvalues(self, asym_part):
        from repro.moments import central_moments_up_to, second_moment_matrix
        from repro.moments.invariants import scale_normalized_second_moments

        central = central_moments_up_to(asym_part, 2)
        mat = scale_normalized_second_moments(central)
        eig = np.linalg.eigvalsh(mat)
        f1, f2, f3 = invariants_from_matrix(mat)
        assert f1 == pytest.approx(eig.sum())
        assert f2 == pytest.approx(eig[0] * eig[1] + eig[0] * eig[2] + eig[1] * eig[2])
        assert f3 == pytest.approx(np.prod(eig))

    def test_matrix_shape_validation(self):
        with pytest.raises(ValueError):
            invariants_from_matrix(np.eye(2))

    def test_distinguishes_shapes(self):
        a = moment_invariants(box((1, 1, 1)))
        b = moment_invariants(box((4, 1, 1)))
        c = moment_invariants(cone(1.0, 2.0, 32))
        assert not np.allclose(a, b)
        assert not np.allclose(a, c)


class TestHigherOrderInvariants:
    @pytest.mark.parametrize("seed", range(3))
    def test_rigid_and_scale_invariance(self, asym_part, seed):
        rng = np.random.default_rng(seed)
        base = higher_order_invariants(asym_part)
        assert base.max() > 1e-8  # non-trivial for an asymmetric part
        moved = translate(
            scale(rotate(asym_part, random_rotation(rng)), rng.uniform(0.5, 2.0)),
            rng.uniform(-5, 5, 3),
        )
        got = higher_order_invariants(moved)
        assert np.allclose(got, base, rtol=1e-5, atol=1e-12)

    def test_vanishes_for_centro_symmetric(self):
        # All odd-order central moments of a box vanish.
        vals = higher_order_invariants(box((2, 3, 4)))
        assert np.allclose(vals, 0.0, atol=1e-12)

    def test_extended_vector_concatenation(self, asym_part):
        ext = extended_moment_invariants(asym_part)
        assert ext.shape == (5,)
        assert np.allclose(ext[:3], moment_invariants(asym_part))


class TestPrincipalMoments:
    def test_sorted_descending(self, asym_part):
        pm = principal_moments(asym_part)
        assert pm[0] >= pm[1] >= pm[2] > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_invariance_when_normalized(self, asym_part, seed):
        rng = np.random.default_rng(seed)
        base = principal_moments(asym_part)
        moved = translate(
            scale(rotate(asym_part, random_rotation(rng)), rng.uniform(0.5, 2.0)),
            rng.uniform(-5, 5, 3),
        )
        assert np.allclose(principal_moments(moved), base, rtol=1e-6)

    def test_unnormalized_depends_on_scale(self, asym_part):
        base = principal_moments(asym_part, normalized=False)
        bigger = principal_moments(scale(asym_part, 2.0), normalized=False)
        assert not np.allclose(base, bigger)

    def test_sphere_isotropic(self):
        pm = principal_moments(uv_sphere(1.0, 24, 48))
        assert pm[0] == pytest.approx(pm[2], rel=1e-2)
