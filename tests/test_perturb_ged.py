"""Vertex perturbation, graph edit distance, and composite placement."""

import numpy as np
import pytest

from repro.geometry import (
    MeshError,
    Placement,
    assemble,
    box,
    cylinder,
    extrude_polygon,
    jitter_vertices,
    rotation_about_axis,
    torus,
    vertex_normals,
    volume,
)
from repro.skeleton import (
    build_skeletal_graph,
    graph_edit_distance,
    graph_similarity,
    thin,
)
from repro.voxel import voxelize


class TestJitter:
    def test_zero_amplitude_identity(self, unit_box):
        out = jitter_vertices(unit_box, 0.0, rng=np.random.default_rng(0))
        assert np.allclose(out.vertices, unit_box.vertices)

    def test_volume_drift_scales_with_amplitude(self, asym_box):
        rng = np.random.default_rng(1)
        small = jitter_vertices(asym_box, 0.005, rng=rng)
        big = jitter_vertices(asym_box, 0.05, rng=np.random.default_rng(1))
        drift_small = abs(volume(small) - 48) / 48
        drift_big = abs(volume(big) - 48) / 48
        assert drift_small < 0.05
        assert drift_small < drift_big + 0.05

    def test_deterministic_under_seed(self, unit_box):
        a = jitter_vertices(unit_box, 0.01, rng=np.random.default_rng(3))
        b = jitter_vertices(unit_box, 0.01, rng=np.random.default_rng(3))
        assert np.array_equal(a.vertices, b.vertices)

    def test_isotropic_mode(self, unit_box):
        out = jitter_vertices(
            unit_box, 0.01, rng=np.random.default_rng(2), along_normals=False
        )
        assert not np.allclose(out.vertices, unit_box.vertices)

    def test_validation(self, unit_box):
        from repro.geometry import TriangleMesh

        with pytest.raises(ValueError):
            jitter_vertices(unit_box, -0.1)
        with pytest.raises(MeshError):
            jitter_vertices(TriangleMesh([], []), 0.1)

    def test_vertex_normals_point_outward_on_box(self, unit_box):
        normals = vertex_normals(unit_box)
        # Each corner normal should point away from the center.
        dots = np.einsum("ij,ij->i", normals, unit_box.vertices)
        assert (dots > 0).all()


def sg(mesh, res=20):
    return build_skeletal_graph(thin(voxelize(mesh, resolution=res)))


class TestGraphEditDistance:
    def test_identical_graphs_zero(self):
        rod = sg(box((10, 1, 1)))
        assert graph_edit_distance(rod, rod) == 0.0

    def test_same_topology_zero(self):
        a = sg(box((10, 1, 1)))
        b = sg(box((9, 1.2, 1.1)))
        assert graph_edit_distance(a, b) == 0.0

    def test_line_vs_loop_positive(self):
        rod = sg(box((10, 1, 1)))
        ring = sg(torus(3, 0.8, 32, 12), res=24)
        assert graph_edit_distance(rod, ring) > 0

    def test_symmetry(self):
        rod = sg(box((10, 1, 1)))
        cross = sg(
            extrude_polygon(
                [[-4, -1], [-1, -1], [-1, -4], [1, -4], [1, -1], [4, -1],
                 [4, 1], [1, 1], [1, 4], [-1, 4], [-1, 1], [-4, 1]], 1.5
            )
        )
        assert graph_edit_distance(rod, cross) == pytest.approx(
            graph_edit_distance(cross, rod)
        )

    def test_empty_graphs(self):
        from repro.skeleton.graph import SkeletalGraph

        empty = SkeletalGraph()
        assert graph_edit_distance(empty, empty) == 0.0
        rod = sg(box((10, 1, 1)))
        assert graph_edit_distance(empty, rod) > 0

    def test_similarity_bounds(self):
        rod = sg(box((10, 1, 1)))
        ring = sg(torus(3, 0.8, 32, 12), res=24)
        s = graph_similarity(rod, ring)
        assert 0.0 < s < 1.0
        assert graph_similarity(rod, rod) == 1.0


class TestComposite:
    def test_placement_translation(self, unit_box):
        placed = Placement(unit_box, offset=(5, 0, 0)).realize()
        lo, hi = placed.bounds()
        assert np.allclose((lo + hi) / 2, [5, 0, 0])

    def test_placement_rotation_then_translation(self):
        rod = box((4, 1, 1))
        rot = rotation_about_axis([0, 0, 1], np.pi / 2)
        placed = Placement(rod, offset=(0, 0, 3), rotation=rot).realize()
        exts = placed.extents()
        assert exts[1] == pytest.approx(4.0)  # long axis now along Y
        lo, hi = placed.bounds()
        assert np.allclose((lo + hi) / 2, [0, 0, 3], atol=1e-9)

    def test_assemble_volume_additive_when_disjoint(self):
        parts = [
            Placement(box((1, 1, 1))),
            Placement(cylinder(0.5, 1, 16), offset=(3, 0, 0)),
        ]
        total = assemble(parts, name="pair")
        expected = 1.0 + volume(cylinder(0.5, 1, 16))
        assert volume(total) == pytest.approx(expected)
        assert total.name == "pair"

    def test_assemble_preserves_component_count(self):
        parts = [Placement(box((1, 1, 1)), offset=(i * 3, 0, 0)) for i in range(3)]
        assert assemble(parts).n_components() == 3
