"""Stateful property test: the R-tree tracks a linear-scan oracle through
arbitrary interleavings of inserts, deletes, and queries."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.index import LinearScanIndex, RTree

coord = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
point = st.tuples(coord, coord, coord)


class RTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = RTree(3, max_entries=4)
        self.oracle = LinearScanIndex(3)
        self.live = {}  # id -> point
        self.next_id = 0

    @rule(p=point)
    def insert(self, p):
        vec = np.asarray(p)
        self.tree.insert(vec, self.next_id)
        self.oracle.insert(vec, self.next_id)
        self.live[self.next_id] = vec
        self.next_id += 1

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def delete(self, data):
        victim = data.draw(st.sampled_from(sorted(self.live)))
        vec = self.live.pop(victim)
        assert self.tree.delete(vec, victim)
        assert self.oracle.delete(vec, victim)

    @precondition(lambda self: self.live)
    @rule(q=point, k=st.integers(1, 6))
    def knn_matches(self, q, k):
        got = [d for _, d in self.tree.nearest(np.asarray(q), k=k)]
        want = [d for _, d in self.oracle.nearest(np.asarray(q), k=k)]
        assert np.allclose(got, want)

    @rule(q=point, radius=st.floats(min_value=0.0, max_value=60.0))
    def radius_matches(self, q, radius):
        got = sorted(i for i, _ in self.tree.radius_search(np.asarray(q), radius))
        want = sorted(i for i, _ in self.oracle.radius_search(np.asarray(q), radius))
        assert got == want

    @invariant()
    def structure_is_valid(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.live)


TestRTreeStateful = RTreeMachine.TestCase
TestRTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
