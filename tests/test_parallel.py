"""Parallel ingestion, persistent feature cache, and bench harness."""

from __future__ import annotations

import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.db.database import ShapeDatabase
from repro.features import (
    CachingPipeline,
    FeaturePipeline,
    ParallelPipeline,
    PersistentFeatureStore,
    PipelineSpec,
    mesh_content_key,
)
from repro.geometry import box, cylinder, tube
from repro.geometry.mesh import TriangleMesh

RES = 8


def small_meshes():
    meshes = [
        box((4.0, 3.0, 2.0)),
        cylinder(1.0, 3.0, 16),
        tube(2.0, 1.0, 1.5, 16),
        box((1.0, 5.0, 1.0)),
    ]
    for mesh, name in zip(meshes, ["box", "cyl", "tube", "bar"]):
        mesh.name = name
    return meshes


def flat_mesh():
    """Zero-volume mesh: extraction raises, by design."""
    return TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]], name="flat")


class TestParallelDeterminism:
    def test_parallel_matches_serial_bitwise(self):
        meshes = small_meshes()

        def build(workers):
            db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
            result = db.insert_meshes(meshes, workers=workers)
            return db, result

        db_serial, res_serial = build(0)
        db_parallel, res_parallel = build(2)
        assert res_serial.shape_ids == res_parallel.shape_ids
        assert not res_parallel.errors
        for shape_id in res_serial.inserted_ids:
            a = db_serial.get(shape_id)
            b = db_parallel.get(shape_id)
            assert a.name == b.name
            assert sorted(a.features) == sorted(b.features)
            for fname, vec in a.features.items():
                assert np.array_equal(vec, b.features[fname]), (shape_id, fname)

    def test_ids_follow_input_order(self):
        db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        result = db.insert_meshes(small_meshes(), workers=2)
        assert result.shape_ids == [1, 2, 3, 4]

    def test_outcomes_ordered_by_input_index(self):
        parallel = ParallelPipeline(
            FeaturePipeline(voxel_resolution=RES), workers=2
        )
        outcomes = parallel.extract_batch(small_meshes())
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert all(o.ok for o in outcomes)

    def test_spec_roundtrip(self):
        pipeline = FeaturePipeline(voxel_resolution=10, prune_spur_length=2)
        spec = PipelineSpec.of(pipeline)
        rebuilt = spec.build()
        assert rebuilt.feature_names == pipeline.feature_names
        assert rebuilt.voxel_resolution == 10
        assert rebuilt.prune_spur_length == 2

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelPipeline(FeaturePipeline(voxel_resolution=RES), workers=-1)


class TestWorkerFailureIsolation:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_bad_mesh_recorded_batch_completes(self, workers):
        meshes = small_meshes()
        meshes.insert(1, flat_mesh())
        db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        result = db.insert_meshes(meshes, workers=workers)
        assert len(result.errors) == 1
        assert result.errors[0].index == 1
        assert result.errors[0].name == "flat"
        assert "volume" in result.errors[0].message
        # The failure consumed no ID and aborted nothing.
        assert result.shape_ids == [1, None, 2, 3, 4]
        assert len(db) == 4

    def test_all_good_after_failure_match_serial(self):
        meshes = small_meshes()
        meshes.append(flat_mesh())
        serial = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        parallel = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        rs = serial.insert_meshes(meshes, workers=0)
        rp = parallel.insert_meshes(meshes, workers=2)
        assert rs.shape_ids == rp.shape_ids
        for shape_id in rs.inserted_ids:
            for fname, vec in serial.get(shape_id).features.items():
                assert np.array_equal(vec, parallel.get(shape_id).features[fname])


class TestPersistentCache:
    def test_rerun_hits_disk(self, tmp_path):
        store = PersistentFeatureStore(tmp_path)
        meshes = small_meshes()
        first = CachingPipeline(FeaturePipeline(voxel_resolution=RES), store=store)
        for mesh in meshes:
            first.extract(mesh)
        assert len(store) == len(meshes)

        second = CachingPipeline(FeaturePipeline(voxel_resolution=RES), store=store)
        for mesh in meshes:
            features = second.extract(mesh)
            assert all(np.isfinite(vec).all() for vec in features.values())
        assert second.misses == 0
        assert second.disk_hits == len(meshes)

    def test_disk_hit_matches_fresh_extraction(self, tmp_path):
        store = PersistentFeatureStore(tmp_path)
        mesh = small_meshes()[0]
        fresh = FeaturePipeline(voxel_resolution=RES).extract(mesh)
        CachingPipeline(FeaturePipeline(voxel_resolution=RES), store=store).extract(mesh)
        cached = CachingPipeline(
            FeaturePipeline(voxel_resolution=RES), store=store
        ).extract(mesh)
        assert sorted(cached) == sorted(fresh)
        for fname, vec in fresh.items():
            assert np.array_equal(vec, cached[fname])

    def test_truncated_file_is_miss_not_crash(self, tmp_path):
        store = PersistentFeatureStore(tmp_path)
        mesh = small_meshes()[0]
        pipeline = CachingPipeline(FeaturePipeline(voxel_resolution=RES), store=store)
        pipeline.extract(mesh)
        (path,) = [
            os.path.join(tmp_path, name)
            for name in os.listdir(tmp_path)
            if name.endswith(".npz")
        ]
        with open(path, "wb") as handle:
            handle.write(b"\x00garbage")

        recovered = CachingPipeline(
            FeaturePipeline(voxel_resolution=RES), store=store
        )
        features = recovered.extract(mesh)
        assert recovered.disk_hits == 0
        assert recovered.misses == 1
        assert all(np.isfinite(vec).all() for vec in features.values())
        # The corrupt entry was replaced by the re-extraction.
        assert store.load(recovered._key(mesh)) is not None

    def test_different_params_different_entries(self, tmp_path):
        store = PersistentFeatureStore(tmp_path)
        mesh = small_meshes()[0]
        CachingPipeline(FeaturePipeline(voxel_resolution=8), store=store).extract(mesh)
        CachingPipeline(FeaturePipeline(voxel_resolution=10), store=store).extract(mesh)
        assert len(store) == 2

    def test_clear(self, tmp_path):
        store = PersistentFeatureStore(tmp_path)
        CachingPipeline(
            FeaturePipeline(voxel_resolution=RES), store=store
        ).extract(small_meshes()[0])
        assert len(store) == 1
        store.clear()
        assert len(store) == 0


class TestContentKey:
    def test_shape_included_in_hash(self):
        # Same bytes, different array shapes must not collide (tobytes()
        # alone would).  Duck-typed stand-ins keep the buffers identical.
        data = np.arange(18, dtype=np.float64)
        faces = np.zeros((1, 3), dtype=np.int64)
        a = SimpleNamespace(vertices=data.reshape(6, 3), faces=faces)
        b = SimpleNamespace(vertices=data.reshape(3, 6), faces=faces)
        assert mesh_content_key(a) != mesh_content_key(b)

    def test_dtype_included_in_hash(self):
        ones64 = np.ones((2, 3), dtype=np.float64)
        # float32 buffer padded to the same byte length as the float64 one
        raw = ones64.tobytes()
        ones32 = np.frombuffer(raw, dtype=np.float32).reshape(2, 6)
        faces = np.zeros((1, 3), dtype=np.int64)
        a = SimpleNamespace(vertices=ones64, faces=faces)
        b = SimpleNamespace(vertices=ones32, faces=faces)
        assert a.vertices.tobytes() == b.vertices.tobytes()
        assert mesh_content_key(a) != mesh_content_key(b)

    def test_real_meshes_distinct(self):
        keys = {mesh_content_key(mesh) for mesh in small_meshes()}
        assert len(keys) == len(small_meshes())

    def test_stable_across_calls(self):
        mesh = small_meshes()[0]
        assert mesh_content_key(mesh) == mesh_content_key(mesh)


class TestBenchHarness:
    def test_quick_bench_schema(self, tmp_path):
        from repro.evaluation import bench

        report = bench.run_bench(quick=True)
        for key in ("schema_version", "revision", "machine", "params",
                    "thinning", "ingestion", "query", "service"):
            assert key in report, key
        assert report["thinning"]["all_identical"]
        assert report["thinning"]["median_speedup"] > 1.0
        assert all(
            run["identical_to_serial"] for run in report["ingestion"]["parallel"]
        )
        assert "pipeline.skeletonize" in report["ingestion"]["stages"]

        out = tmp_path / "bench.json"
        bench.write_bench(report, str(out))
        import json

        loaded = json.loads(out.read_text())
        assert loaded["schema_version"] == bench.SCHEMA_VERSION
        assert all(
            run["failed"] == 0 for run in report["service"]["runs"]
        )
        summary = bench.format_summary(report)
        assert "thinning" in summary and "ingestion" in summary
        assert "service" in summary
