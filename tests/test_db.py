"""Shape database: records, indexing, persistence."""

import numpy as np
import pytest

from repro.db import ShapeDatabase, ShapeRecord, StorageError, load_records, save_records
from repro.features import FeaturePipeline
from repro.geometry import box, cylinder, torus


@pytest.fixture
def db():
    database = ShapeDatabase(FeaturePipeline(voxel_resolution=12))
    database.insert_mesh(box((2, 3, 4)), group="boxes")
    database.insert_mesh(box((2.1, 3.1, 3.8)), group="boxes")
    database.insert_mesh(cylinder(1, 4, 16), group="cyls")
    database.insert_mesh(torus(2, 0.5, 16, 8))
    return database


class TestRecords:
    def test_feature_lookup(self, db):
        rec = db.get(1)
        assert rec.feature("principal_moments").shape == (3,)

    def test_missing_feature_raises_with_names(self, db):
        with pytest.raises(KeyError, match="available"):
            db.get(1).feature("nope")

    def test_is_noise(self, db):
        assert db.get(4).is_noise()
        assert not db.get(1).is_noise()


class TestCrud:
    def test_ids_sequential(self, db):
        assert db.ids() == [1, 2, 3, 4]

    def test_contains_and_len(self, db):
        assert len(db) == 4
        assert 1 in db
        assert 99 not in db

    def test_get_missing(self, db):
        with pytest.raises(KeyError):
            db.get(99)

    def test_iteration_ordered(self, db):
        assert [r.shape_id for r in db] == [1, 2, 3, 4]

    def test_delete_removes_from_index(self, db):
        q = db.get(1).feature("principal_moments")
        db.delete(2)
        hits = [i for i, _ in db.nearest("principal_moments", q, k=4)]
        assert 2 not in hits
        assert len(db) == 3

    def test_insert_without_pipeline_raises(self):
        empty = ShapeDatabase(pipeline=None)
        with pytest.raises(RuntimeError):
            empty.insert_mesh(box((1, 1, 1)))

    def test_insert_record_reassigns_taken_id(self, db):
        rec = ShapeRecord(shape_id=1, name="dup", features={"f": np.zeros(2)})
        new_id = db.insert_record(rec)
        assert new_id == 5

    def test_feature_names(self, db):
        assert "principal_moments" in db.feature_names()
        assert "eigenvalues" in db.feature_names()

    def test_dimension_mismatch_rejected(self, db):
        bad = ShapeRecord(
            shape_id=0, name="bad", features={"principal_moments": np.zeros(7)}
        )
        with pytest.raises(ValueError, match="dimension"):
            db.insert_record(bad)


class TestQueries:
    def test_nearest_self_first(self, db):
        q = db.get(1).feature("principal_moments")
        hits = db.nearest("principal_moments", q, k=2)
        assert hits[0][0] == 1
        assert hits[0][1] == pytest.approx(0.0)

    def test_within_radius(self, db):
        q = db.get(1).feature("principal_moments")
        hits = db.within_radius("principal_moments", q, radius=1e9)
        assert len(hits) == 4

    def test_unknown_feature_index(self, db):
        with pytest.raises(KeyError):
            db.index("nope")

    def test_feature_matrix_alignment(self, db):
        matrix, ids = db.feature_matrix("principal_moments")
        assert matrix.shape == (4, 3)
        assert ids == [1, 2, 3, 4]

    def test_feature_matrix_missing(self, db):
        with pytest.raises(KeyError):
            db.feature_matrix("nope")


class TestGroundTruth:
    def test_classification_map(self, db):
        cmap = db.classification_map()
        assert cmap == {"boxes": [1, 2], "cyls": [3]}

    def test_relevant_to_excludes_query(self, db):
        assert db.relevant_to(1) == [2]
        assert db.relevant_to(3) == []

    def test_noise_has_no_relevant(self, db):
        assert db.relevant_to(4) == []

    def test_group_of(self, db):
        assert db.group_of(1) == "boxes"
        assert db.group_of(4) is None


class TestPersistence:
    def test_roundtrip(self, db, tmp_path):
        db.save(tmp_path / "store")
        back = ShapeDatabase.load(tmp_path / "store")
        assert len(back) == len(db)
        assert back.get(1).group == "boxes"
        assert np.allclose(
            back.get(1).feature("principal_moments"),
            db.get(1).feature("principal_moments"),
        )
        assert back.get(1).mesh.n_faces == db.get(1).mesh.n_faces

    def test_load_without_meshes(self, db, tmp_path):
        db.save(tmp_path / "store")
        back = ShapeDatabase.load(tmp_path / "store", load_meshes=False)
        assert back.get(1).mesh is None
        q = back.get(1).feature("principal_moments")
        assert back.nearest("principal_moments", q, k=1)[0][0] == 1

    def test_queries_after_reload_match(self, db, tmp_path):
        q = db.get(1).feature("principal_moments")
        before = [i for i, _ in db.nearest("principal_moments", q, k=4)]
        db.save(tmp_path / "store")
        back = ShapeDatabase.load(tmp_path / "store")
        after = [i for i, _ in back.nearest("principal_moments", q, k=4)]
        assert before == after

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_records(tmp_path)

    def test_metadata_roundtrip(self, tmp_path):
        rec = ShapeRecord(
            shape_id=3,
            name="meta",
            features={"f": np.arange(4.0)},
            metadata={"source": "unit-test"},
        )
        save_records([rec], tmp_path / "s")
        back = load_records(tmp_path / "s")
        assert back[0].metadata == {"source": "unit-test"}
        assert np.array_equal(back[0].features["f"], np.arange(4.0))

    def test_rebuild_indexes_bulk_and_incremental(self, db):
        q = db.get(1).feature("principal_moments")
        expect = [i for i, _ in db.nearest("principal_moments", q, k=4)]
        db.rebuild_indexes(bulk=True)
        assert [i for i, _ in db.nearest("principal_moments", q, k=4)] == expect
        db.rebuild_indexes(bulk=False)
        assert [i for i, _ in db.nearest("principal_moments", q, k=4)] == expect
