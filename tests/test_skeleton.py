"""Simple-point test, thinning, skeletal graphs, adjacency spectra."""

import numpy as np
import pytest

from repro.geometry import box, extrude_polygon, plate_with_rect_hole, torus
from repro.skeleton import (
    CURVE,
    LINE,
    LOOP,
    adjacency_matrix,
    build_skeletal_graph,
    connection_weight,
    is_simple,
    is_simple_mask,
    pack_neighborhood,
    spectrum,
    thin,
)
from repro.voxel import VoxelGrid, label_components, voxelize


def block_grid(shape=(8, 8, 8), fill=None):
    occ = np.zeros(shape, dtype=bool)
    if fill is not None:
        occ[fill] = True
    return VoxelGrid(occ)


class TestSimplePoint:
    def test_isolated_voxel_not_simple(self):
        block = np.zeros((3, 3, 3), dtype=bool)
        assert not is_simple(block)

    def test_interior_voxel_not_simple(self):
        block = np.ones((3, 3, 3), dtype=bool)
        assert not is_simple(block)

    def test_face_surface_voxel_simple(self):
        block = np.zeros((3, 3, 3), dtype=bool)
        block[:, :, 0] = True  # slab below; center sits on its surface
        assert is_simple(block)

    def test_bridge_voxel_not_simple(self):
        # Two separate object voxels connected only through the center.
        block = np.zeros((3, 3, 3), dtype=bool)
        block[0, 1, 1] = True
        block[2, 1, 1] = True
        assert not is_simple(block)

    def test_line_end_voxel_simple(self):
        block = np.zeros((3, 3, 3), dtype=bool)
        block[0, 1, 1] = True  # one neighbor: center is a line end
        assert is_simple(block)

    def test_pack_roundtrip(self):
        rng = np.random.default_rng(0)
        block = rng.random((3, 3, 3)) < 0.5
        mask = pack_neighborhood(block)
        assert 0 <= mask < 1 << 26
        assert is_simple_mask(mask) == is_simple(block)

    def test_pack_validation(self):
        with pytest.raises(ValueError):
            pack_neighborhood(np.ones((3, 3)))


class TestThinning:
    def test_preserves_component_count(self):
        grid = voxelize(box((6, 2, 2)), resolution=16)
        skel = thin(grid)
        _, n_before = label_components(grid.occupancy)
        # Components under 26-connectivity: use cluster on occupied set.
        assert skel.n_occupied >= 1
        _, n_after = label_components(skel.occupancy)
        assert n_after <= n_before  # 6-conn may split; 26-conn preserved below
        from repro.skeleton.graph import _cluster

        occ = {tuple(v) for v in skel.occupied_indices()}
        assert len(_cluster(sorted(occ))) == 1

    def test_rod_thins_to_thin_curve(self):
        grid = voxelize(box((10, 1, 1)), resolution=20)
        skel = thin(grid)
        assert skel.n_occupied < grid.n_occupied / 5

    def test_torus_keeps_cycle(self):
        grid = voxelize(torus(3.0, 0.8, 48, 16), resolution=24)
        skel = thin(grid)
        sg = build_skeletal_graph(skel)
        assert sg.type_counts()[LOOP] >= 1

    def test_idempotent_on_skeleton(self):
        grid = voxelize(box((8, 1.2, 1.2)), resolution=16)
        skel = thin(grid)
        again = thin(skel)
        assert again.n_occupied == skel.n_occupied

    def test_without_endpoint_preservation_shrinks_more(self):
        grid = voxelize(box((8, 1.2, 1.2)), resolution=16)
        curve = thin(grid, preserve_endpoints=True)
        point = thin(grid, preserve_endpoints=False)
        assert point.n_occupied <= curve.n_occupied
        assert point.n_occupied == 1  # a ball-topology solid shrinks to a point

    def test_grid_metadata_preserved(self):
        grid = voxelize(box((4, 2, 2)), resolution=12)
        skel = thin(grid)
        assert skel.spacing == grid.spacing
        assert np.allclose(skel.origin, grid.origin)


class TestThinningKernels:
    """The batched kernel must be bitwise identical to the reference loop."""

    MESHES = {
        "box": lambda: box((4, 3, 2)),
        "l_bracket": lambda: extrude_polygon(
            [[0, 0], [6, 0], [6, 1], [1, 1], [1, 6], [0, 6]], 1.0
        ),
        "torus": lambda: torus(3.0, 0.8, 32, 12),
        "plate_with_hole": lambda: plate_with_rect_hole(8, 6, 1, 3, 2),
    }

    @pytest.mark.parametrize("name", sorted(MESHES))
    @pytest.mark.parametrize("resolution", [10, 16])
    def test_identical_on_solids(self, name, resolution):
        grid = voxelize(self.MESHES[name](), resolution=resolution)
        a = thin(grid, kernel="reference")
        b = thin(grid, kernel="batched")
        assert np.array_equal(a.occupancy, b.occupancy)

    @pytest.mark.parametrize("preserve_endpoints", [True, False])
    def test_identical_on_random_grids(self, preserve_endpoints):
        rng = np.random.default_rng(7)
        for density in (0.2, 0.5, 0.8):
            occ = rng.random((9, 9, 9)) < density
            grid = VoxelGrid(occ)
            a = thin(grid, preserve_endpoints=preserve_endpoints, kernel="reference")
            b = thin(grid, preserve_endpoints=preserve_endpoints, kernel="batched")
            assert np.array_equal(a.occupancy, b.occupancy), density

    def test_unknown_kernel_rejected(self):
        grid = voxelize(box((2, 2, 2)), resolution=8)
        with pytest.raises(ValueError, match="unknown thinning kernel"):
            thin(grid, kernel="bogus")

    def test_pack_volume_matches_neighborhood_mask(self):
        from repro.skeleton.simple_point import neighborhood_mask
        from repro.skeleton.thinning import pack_volume

        rng = np.random.default_rng(3)
        occ = rng.random((6, 5, 7)) < 0.5
        packed = pack_volume(occ)
        for x in range(occ.shape[0]):
            for y in range(occ.shape[1]):
                for z in range(occ.shape[2]):
                    assert int(packed[x + 1, y + 1, z + 1]) == neighborhood_mask(
                        occ, x, y, z
                    )


class TestSkeletalGraph:
    def test_empty_grid(self):
        sg = build_skeletal_graph(block_grid())
        assert sg.n_nodes == 0

    def test_single_voxel_is_degenerate_line(self):
        sg = build_skeletal_graph(block_grid(fill=(4, 4, 4)))
        assert sg.n_nodes == 1
        assert sg.segments[0].kind == LINE

    def test_straight_chain_is_line(self):
        occ = np.zeros((10, 5, 5), dtype=bool)
        occ[1:9, 2, 2] = True
        sg = build_skeletal_graph(VoxelGrid(occ))
        assert sg.n_nodes == 1
        assert sg.segments[0].kind == LINE
        assert sg.segments[0].length == 8

    def test_bent_chain_is_curve(self):
        occ = np.zeros((10, 10, 3), dtype=bool)
        occ[1:9, 1, 1] = True
        occ[8, 1:9, 1] = True
        sg = build_skeletal_graph(VoxelGrid(occ))
        kinds = {s.kind for s in sg.segments}
        assert CURVE in kinds or len(sg.segments) > 1

    def test_closed_ring_is_loop(self):
        # Diamond ring: |x-5| + |y-5| == 4 is a closed degree-2 cycle.
        occ = np.zeros((11, 11, 3), dtype=bool)
        for x in range(11):
            for y in range(11):
                if abs(x - 5) + abs(y - 5) == 4:
                    occ[x, y, 1] = True
        sg = build_skeletal_graph(VoxelGrid(occ))
        assert sg.n_nodes == 1
        assert sg.segments[0].kind == LOOP

    def test_cross_has_junction_and_multiple_entities(self):
        occ = np.zeros((11, 11, 3), dtype=bool)
        occ[1:10, 5, 1] = True
        occ[5, 1:10, 1] = True
        sg = build_skeletal_graph(VoxelGrid(occ))
        assert sg.n_junctions == 1
        assert sg.n_nodes >= 3
        assert sg.graph.number_of_edges() >= 3

    def test_plate_with_hole_pipeline(self):
        grid = voxelize(plate_with_rect_hole(8, 6, 1, 3, 2), resolution=28)
        sg = build_skeletal_graph(thin(grid))
        assert sg.type_counts()[LOOP] >= 1


class TestAdjacency:
    def test_matrix_symmetric(self):
        grid = voxelize(
            extrude_polygon(
                [[-4, -1], [-1, -1], [-1, -4], [1, -4], [1, -1], [4, -1],
                 [4, 1], [1, 1], [1, 4], [-1, 4], [-1, 1], [-4, 1]], 1.5
            ),
            resolution=24,
        )
        sg = build_skeletal_graph(thin(grid))
        mat = adjacency_matrix(sg)
        assert np.allclose(mat, mat.T)

    def test_connection_weights_by_type(self):
        assert connection_weight(LINE, LINE) == 1.0
        assert connection_weight(LOOP, LINE) == connection_weight(LINE, LOOP)
        assert connection_weight(LOOP, LOOP) > connection_weight(LINE, LINE)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            connection_weight("blob", LINE)

    def test_spectrum_fixed_dimension(self):
        occ = np.zeros((10, 5, 5), dtype=bool)
        occ[1:9, 2, 2] = True
        sg = build_skeletal_graph(VoxelGrid(occ))
        assert spectrum(sg, dim=6).shape == (6,)
        assert spectrum(sg, dim=1).shape == (1,)

    def test_spectrum_empty_graph_is_zero(self):
        sg = build_skeletal_graph(block_grid())
        assert np.allclose(spectrum(sg, dim=4), 0.0)

    def test_spectrum_sorted_by_magnitude(self):
        occ = np.zeros((11, 11, 3), dtype=bool)
        occ[1:10, 5, 1] = True
        occ[5, 1:10, 1] = True
        sg = build_skeletal_graph(VoxelGrid(occ))
        spec = spectrum(sg, dim=8)
        mags = np.abs(spec[spec != 0])
        assert (np.diff(mags) <= 1e-12).all()

    def test_spectrum_dim_validation(self):
        sg = build_skeletal_graph(block_grid(fill=(4, 4, 4)))
        with pytest.raises(ValueError):
            spectrum(sg, dim=0)

    def test_loop_vs_line_distinguished(self):
        ring = np.zeros((11, 11, 3), dtype=bool)
        for x in range(11):
            for y in range(11):
                if abs(x - 5) + abs(y - 5) == 4:
                    ring[x, y, 1] = True
        line = np.zeros((11, 11, 3), dtype=bool)
        line[1:7, 3, 1] = True
        s_ring = spectrum(build_skeletal_graph(VoxelGrid(ring)))
        s_line = spectrum(build_skeletal_graph(VoxelGrid(line)))
        assert not np.allclose(s_ring, s_line)
