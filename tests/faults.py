"""Fault-injection helpers shared by the robustness test suite.

Factories for broken meshes (NaN vertices, zero-area faces, collapsed
bounding boxes), extractors that hang or fail on demand, and byte-level
corruption of saved database directories.  Kept importable (no pytest
dependency) so the CI fault-injection job can also drive them directly.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.features.base import FeatureExtractor
from repro.geometry.mesh import TriangleMesh
from repro.geometry.primitives import box

#: Marker extent: meshes built by :func:`hanging_mesh` trip the sleeping
#: extractor, everything else passes through instantly.
HANG_EXTENT = 7.0


def good_mesh(scale: float = 1.0) -> TriangleMesh:
    """A clean closed box; always ingests."""
    return TriangleMesh(
        np.asarray(box((2.0 * scale, 1.0, 1.0)).vertices),
        np.asarray(box((2.0 * scale, 1.0, 1.0)).faces),
        name=f"good_{scale:g}",
    )


def nan_vertex_mesh() -> TriangleMesh:
    """A box with one NaN coordinate (fails ``mesh.nonfinite_vertices``).

    Construction-time validation is sidestepped by mutating the vertex
    buffer in place — exactly the failure mode the pre-flight validator
    exists to catch.
    """
    mesh = box((1.0, 1.0, 1.0))
    mesh.vertices[0, 0] = np.nan
    mesh.name = "nan_vertex"
    return mesh


def zero_area_mesh() -> TriangleMesh:
    """Every face degenerate — three collinear points per triangle
    (fails ``mesh.degenerate_faces``)."""
    verts = np.array(
        [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0], [3.0, 0.0, 1.0]]
    )
    faces = np.array([[0, 1, 2]])
    return TriangleMesh(verts, faces, name="zero_area")


def zero_extent_mesh() -> TriangleMesh:
    """All vertices coincide: voxelizes to nothing
    (fails ``mesh.zero_extent``)."""
    verts = np.zeros((3, 3))
    faces = np.array([[0, 1, 2]])
    return TriangleMesh(verts, faces, name="zero_extent")


def flat_mesh() -> TriangleMesh:
    """Open zero-volume sheet: passes pre-flight validation, fails at
    normalization (``mesh.zero_volume``)."""
    return TriangleMesh(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]], name="flat"
    )


def hanging_mesh() -> TriangleMesh:
    """A valid box whose extent triggers :class:`SleepingExtractor`."""
    mesh = box((HANG_EXTENT, 1.0, 1.0))
    return TriangleMesh(
        np.asarray(mesh.vertices), np.asarray(mesh.faces), name="hanging"
    )


class SleepingExtractor(FeatureExtractor):
    """Hangs (far past any test timeout) on :func:`hanging_mesh` only."""

    name = "sleeping"
    dim = 1
    sleep_seconds = 120.0

    def extract(self, context) -> np.ndarray:
        verts = np.asarray(context.mesh.vertices)
        extent = float(verts[:, 0].max() - verts[:, 0].min())
        if abs(extent - HANG_EXTENT) < 1e-9:
            time.sleep(self.sleep_seconds)
        return np.array([extent])


def register_sleeping_extractor() -> str:
    """Register :class:`SleepingExtractor`; returns its feature name.

    Registration is inherited by pool workers (fork start method), so
    timeout tests can use it inside subprocess extraction too.
    """
    from repro.features.registry import register_extractor

    register_extractor(SleepingExtractor.name, SleepingExtractor)
    return SleepingExtractor.name


def flip_byte(path: os.PathLike, offset: int = -1) -> None:
    """Invert one byte of a file in place (default: middle of the file)."""
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        assert size > 0, f"cannot corrupt empty file {path}"
        pos = size // 2 if offset < 0 else offset
        handle.seek(pos)
        byte = handle.read(1)
        handle.seek(pos)
        handle.write(bytes([byte[0] ^ 0xFF]))


def write_broken_off(path: os.PathLike) -> None:
    """Write a syntactically broken OFF file (truncated vertex block)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("OFF\n8 12 0\n0.0 0.0\n")
