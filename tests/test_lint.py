"""Tests for :mod:`repro.lint` (rules RPL001-RPL006), the metric
catalog, and the catalog-sync check.

Rule tests compile positive/negative snippets from strings through
:func:`repro.lint.lint_source`; the self-hosting tests run the real
linter over the repository's own ``src/`` tree.
"""

import json
import pickle
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    REPORT_SCHEMA_VERSION,
    all_rules,
    apply_baseline,
    collect_files,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.lint.baseline import BaselineError, fingerprint
from repro.lint.cli import LintExit
from repro.lint.cli import main as lint_main
from repro.lint.core import PARSE_ERROR
from repro.obs import catalog

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def run_rule(code, source, path="src/repro/somewhere/mod.py"):
    """Diagnostics of one rule over an in-memory snippet."""
    diags, suppressed = lint_source(path, source, active=frozenset({code}))
    return diags, suppressed


def codes(diags):
    return [d.code for d in diags]


# ----------------------------------------------------------------------
# registry / core
# ----------------------------------------------------------------------
class TestCore:
    def test_registered_rule_codes(self):
        registered = [r.code for r in all_rules()]
        assert registered == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL100",
            "RPL101",
            "RPL102",
        ]

    def test_syntax_error_becomes_rpl000(self):
        diags, _ = lint_source("bad.py", "def broken(:\n")
        assert codes(diags) == [PARSE_ERROR]
        assert "does not parse" in diags[0].message

    def test_diagnostic_format_is_clickable(self):
        diags, _ = run_rule("RPL001", "try:\n    x()\nexcept Exception:\n    pass\n")
        line = diags[0].format()
        assert line.startswith("src/repro/somewhere/mod.py:3:")
        assert "RPL001" in line

    def test_collect_files_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "b.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "c.py").write_text("x = 1\n")
        (tmp_path / "keep").mkdir()
        (tmp_path / "keep" / "d.py").write_text("x = 1\n")
        found = collect_files([str(tmp_path)])
        names = [Path(p).name for p in found]
        assert names == ["a.py", "d.py"]

    def test_collect_files_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            collect_files(["definitely/not/here"])

    def test_unknown_select_code_raises(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        with pytest.raises(ValueError, match="unknown rule code"):
            lint_paths([str(tmp_path)], select=["RPL999"])


# ----------------------------------------------------------------------
# RPL001 — broad except
# ----------------------------------------------------------------------
class TestRPL001:
    def test_flags_swallowing_broad_except(self):
        diags, _ = run_rule(
            "RPL001", "try:\n    x()\nexcept Exception:\n    pass\n"
        )
        assert codes(diags) == ["RPL001"]

    def test_flags_bare_except(self):
        diags, _ = run_rule("RPL001", "try:\n    x()\nexcept:\n    pass\n")
        assert codes(diags) == ["RPL001"]

    def test_flags_broad_member_of_tuple(self):
        diags, _ = run_rule(
            "RPL001",
            "try:\n    x()\nexcept (ValueError, Exception):\n    pass\n",
        )
        assert codes(diags) == ["RPL001"]

    def test_reraise_is_clean(self):
        diags, _ = run_rule(
            "RPL001", "try:\n    x()\nexcept Exception:\n    raise\n"
        )
        assert diags == []

    def test_classify_exception_is_clean(self):
        src = (
            "try:\n"
            "    x()\n"
            "except Exception as exc:\n"
            "    info = classify_exception(exc)\n"
        )
        diags, _ = run_rule("RPL001", src)
        assert diags == []

    def test_narrow_except_is_clean(self):
        diags, _ = run_rule(
            "RPL001", "try:\n    x()\nexcept ValueError:\n    pass\n"
        )
        assert diags == []

    def test_raise_inside_nested_def_does_not_count(self):
        src = (
            "try:\n"
            "    x()\n"
            "except Exception:\n"
            "    def later():\n"
            "        raise ValueError('no')\n"
        )
        diags, _ = run_rule("RPL001", src)
        assert codes(diags) == ["RPL001"]


# ----------------------------------------------------------------------
# RPL002 — metric catalog
# ----------------------------------------------------------------------
class TestRPL002:
    def test_flags_unknown_literal_metric(self):
        diags, _ = run_rule("RPL002", "metrics.inc('bogus.metric', 1)\n")
        assert codes(diags) == ["RPL002"]
        assert "bogus.metric" in diags[0].message

    def test_known_metric_is_clean(self):
        diags, _ = run_rule("RPL002", "metrics.inc('cache.hits')\n")
        assert diags == []

    def test_placeholder_family_is_clean(self):
        diags, _ = run_rule(
            "RPL002", "metrics.timed('pipeline.feature.eigenvalues')\n"
        )
        assert diags == []

    def test_fstring_with_known_prefix_is_clean(self):
        diags, _ = run_rule(
            "RPL002", "metrics.timed(f'jobs.{job.type}')\n"
        )
        assert diags == []

    def test_fstring_with_unknown_prefix_is_flagged(self):
        diags, _ = run_rule(
            "RPL002", "metrics.timed(f'bogus.{job.type}')\n"
        )
        assert codes(diags) == ["RPL002"]

    def test_registry_module_is_exempt(self):
        diags, _ = lint_source(
            "src/repro/obs/registry.py",
            "metrics.inc('bogus.metric')\n",
            active=frozenset({"RPL002"}),
        )
        assert diags == []

    def test_module_level_timed_helper_is_checked(self):
        diags, _ = run_rule("RPL002", "timed('bogus.section')\n")
        assert codes(diags) == ["RPL002"]


# ----------------------------------------------------------------------
# RPL003 — exit codes
# ----------------------------------------------------------------------
class TestRPL003:
    def test_flags_sys_exit_literal(self):
        diags, _ = run_rule("RPL003", "import sys\nsys.exit(1)\n")
        assert codes(diags) == ["RPL003"]

    def test_flags_return_literal_in_main(self):
        diags, _ = run_rule("RPL003", "def main():\n    return 2\n")
        assert codes(diags) == ["RPL003"]

    def test_flags_return_literal_in_cmd_function(self):
        diags, _ = run_rule("RPL003", "def _cmd_query(args):\n    return 0\n")
        assert codes(diags) == ["RPL003"]

    def test_flags_raise_system_exit_literal(self):
        diags, _ = run_rule("RPL003", "raise SystemExit(3)\n")
        assert codes(diags) == ["RPL003"]

    def test_enum_member_is_clean(self):
        src = (
            "import sys\n"
            "def main():\n"
            "    return ExitCode.OK\n"
            "sys.exit(main())\n"
        )
        diags, _ = run_rule("RPL003", src)
        assert diags == []

    def test_return_literal_elsewhere_is_clean(self):
        diags, _ = run_rule("RPL003", "def helper():\n    return 2\n")
        assert diags == []

    def test_bool_literal_not_treated_as_exit_code(self):
        diags, _ = run_rule("RPL003", "def main():\n    return True\n")
        assert diags == []


# ----------------------------------------------------------------------
# RPL004 — deprecated facade calls
# ----------------------------------------------------------------------
class TestRPL004:
    @pytest.mark.parametrize(
        "method", ["query_by_example", "query_by_threshold", "multi_step"]
    )
    def test_flags_deprecated_calls(self, method):
        diags, _ = run_rule("RPL004", f"system.{method}(query, k=3)\n")
        assert codes(diags) == ["RPL004"]
        assert method in diags[0].message

    def test_new_api_is_clean(self):
        diags, _ = run_rule(
            "RPL004", "system.search(SearchRequest(query=q, k=3))\n"
        )
        assert diags == []

    def test_method_definition_is_not_a_call(self):
        diags, _ = run_rule(
            "RPL004", "class T:\n    def query_by_example(self):\n        pass\n"
        )
        assert diags == []


# ----------------------------------------------------------------------
# RPL005 — picklable handlers
# ----------------------------------------------------------------------
class TestRPL005:
    def test_flags_lambda_register(self):
        diags, _ = run_rule(
            "RPL005", "runner.register('t', lambda job: None)\n"
        )
        assert codes(diags) == ["RPL005"]

    def test_flags_lambda_in_handlers_dict(self):
        diags, _ = run_rule(
            "RPL005", "r = JobRunner(q, {'t': lambda job: None})\n"
        )
        assert codes(diags) == ["RPL005"]

    def test_flags_lambda_pool_factory(self):
        diags, _ = run_rule("RPL005", "pool = WorkerPool(lambda: handler)\n")
        assert codes(diags) == ["RPL005"]

    def test_flags_lambda_submitted(self):
        diags, _ = run_rule("RPL005", "pool.submit(lambda: 1)\n")
        assert codes(diags) == ["RPL005"]

    def test_flags_nested_function_handler(self):
        src = (
            "def setup(runner):\n"
            "    def handle(job):\n"
            "        return None\n"
            "    runner.register('t', handle)\n"
        )
        diags, _ = run_rule("RPL005", src)
        assert codes(diags) == ["RPL005"]
        assert "handle" in diags[0].message

    def test_module_level_handler_is_clean(self):
        src = (
            "def handle(job):\n"
            "    return None\n"
            "def setup(runner):\n"
            "    runner.register('t', handle)\n"
        )
        diags, _ = run_rule("RPL005", src)
        assert diags == []

    def test_dataclass_instance_is_clean(self):
        diags, _ = run_rule(
            "RPL005",
            "r = JobRunner(q, {'re-extract': ReextractHandler(db)})\n",
        )
        assert diags == []

    def test_reextract_handler_is_picklable(self):
        from repro.jobs import ReextractHandler

        handler = ReextractHandler(database=None)
        clone = pickle.loads(pickle.dumps(handler))
        assert isinstance(clone, ReextractHandler)


# ----------------------------------------------------------------------
# RPL006 — taxonomy raises in pipeline stages
# ----------------------------------------------------------------------
class TestRPL006:
    @pytest.mark.parametrize(
        "pkg", ["voxel", "skeleton", "features", "geometry"]
    )
    def test_flags_bare_valueerror_in_stage(self, pkg):
        diags, _ = lint_source(
            f"src/repro/{pkg}/mod.py",
            "raise ValueError('bad')\n",
            active=frozenset({"RPL006"}),
        )
        assert codes(diags) == ["RPL006"]

    def test_flags_runtimeerror_too(self):
        diags, _ = lint_source(
            "src/repro/skeleton/mod.py",
            "raise RuntimeError('bad')\n",
            active=frozenset({"RPL006"}),
        )
        assert codes(diags) == ["RPL006"]

    def test_taxonomy_raise_is_clean(self):
        diags, _ = lint_source(
            "src/repro/voxel/mod.py",
            "raise InvalidParameterError('bad', code='usage.x')\n",
            active=frozenset({"RPL006"}),
        )
        assert diags == []

    def test_outside_stage_packages_not_flagged(self):
        diags, _ = lint_source(
            "src/repro/search/mod.py",
            "raise ValueError('fine here')\n",
            active=frozenset({"RPL006"}),
        )
        assert diags == []

    def test_invalid_parameter_error_is_still_valueerror(self):
        from repro.robust.errors import InvalidParameterError, ReproError

        exc = InvalidParameterError("nope")
        assert isinstance(exc, ValueError)
        assert isinstance(exc, ReproError)
        assert exc.stage == "usage"
        assert exc.code == "usage.invalid_parameter"


# ----------------------------------------------------------------------
# RPL007 — no internal callers of the multi_step mode shim
# ----------------------------------------------------------------------
class TestRPL007:
    def test_flags_search_request_construction(self):
        diags, _ = run_rule(
            "RPL007",
            "SearchRequest(query=1, mode='multi_step', steps=[('a', 3)])\n",
        )
        assert codes(diags) == ["RPL007"]

    def test_flags_search_method_call(self):
        diags, _ = run_rule(
            "RPL007",
            "client.search(shape_id=1, mode='multi_step')\n",
        )
        assert codes(diags) == ["RPL007"]

    def test_cascade_mode_is_clean(self):
        diags, _ = run_rule(
            "RPL007",
            "SearchRequest(query=1, mode='cascade')\n",
        )
        assert diags == []

    def test_dynamic_mode_is_exempt(self):
        # Protocol decoders thread a client-sent mode through a variable;
        # only literal shim construction is the project's own debt.
        diags, _ = run_rule(
            "RPL007",
            "mode = payload.get('mode')\nSearchRequest(query=1, mode=mode)\n",
        )
        assert diags == []

    def test_other_calls_with_mode_kw_are_exempt(self):
        diags, _ = run_rule(
            "RPL007",
            "open_thing(path, mode='multi_step')\n",
        )
        assert diags == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    SRC = "try:\n    x()\nexcept Exception:{comment}\n    pass\n"

    def test_same_line_suppression(self):
        src = self.SRC.format(
            comment="  # repro-lint: disable=RPL001 -- boundary"
        )
        diags, suppressed = run_rule("RPL001", src)
        assert diags == []
        assert suppressed == 1

    def test_line_above_suppression(self):
        src = (
            "try:\n"
            "    x()\n"
            "# repro-lint: disable=RPL001 -- boundary\n"
            "except Exception:\n"
            "    pass\n"
        )
        diags, suppressed = run_rule("RPL001", src)
        assert diags == []
        assert suppressed == 1

    def test_disable_all(self):
        src = self.SRC.format(comment="  # repro-lint: disable=all")
        diags, suppressed = run_rule("RPL001", src)
        assert diags == []
        assert suppressed == 1

    def test_wrong_code_does_not_suppress(self):
        src = self.SRC.format(comment="  # repro-lint: disable=RPL006")
        diags, suppressed = run_rule("RPL001", src)
        assert codes(diags) == ["RPL001"]
        assert suppressed == 0

    def test_distant_comment_does_not_suppress(self):
        src = (
            "# repro-lint: disable=RPL001\n"
            "y = 1\n"
            "try:\n"
            "    x()\n"
            "except Exception:\n"
            "    pass\n"
        )
        diags, _ = run_rule("RPL001", src)
        assert codes(diags) == ["RPL001"]

    def test_parse_error_cannot_be_suppressed(self):
        diags, _ = lint_source(
            "bad.py", "def broken(:  # repro-lint: disable=all\n"
        )
        assert codes(diags) == [PARSE_ERROR]


# ----------------------------------------------------------------------
# reporters + CLI
# ----------------------------------------------------------------------
class TestReportersAndCli:
    def _violations_tree(self, tmp_path):
        """One seeded violation of each of the seven rules."""
        stage = tmp_path / "voxel"
        stage.mkdir()
        (stage / "bad_stage.py").write_text("raise ValueError('x')\n")
        (tmp_path / "bad_rest.py").write_text(
            "import sys\n"
            "try:\n"
            "    x()\n"
            "except Exception:\n"
            "    pass\n"
            "metrics.inc('bogus.metric')\n"
            "sys.exit(1)\n"
            "system.query_by_example(q)\n"
            "runner.register('t', lambda job: None)\n"
            "SearchRequest(query=1, mode='multi_step')\n"
        )
        return tmp_path

    def test_seeded_violations_hit_all_seven_rules(self, tmp_path):
        report = lint_paths([str(self._violations_tree(tmp_path))])
        assert sorted(report.counts_by_code()) == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
        ]

    def test_json_reporter_schema(self, tmp_path):
        report = lint_paths([str(self._violations_tree(tmp_path))])
        payload = json.loads(render_json(report))
        assert payload["version"] == REPORT_SCHEMA_VERSION
        assert payload["ok"] is False
        assert payload["files_checked"] == 2
        assert isinstance(payload["suppressed"], int)
        assert set(payload["counts"]) == {
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
            "RPL007",
        }
        for diag in payload["diagnostics"]:
            assert set(diag) == {"code", "path", "line", "col", "message"}
            assert diag["line"] >= 1

    def test_text_reporter_mentions_counts(self, tmp_path):
        report = lint_paths([str(self._violations_tree(tmp_path))])
        text = render_text(report)
        assert "RPL001: 1" in text
        assert "file:" not in text  # diagnostics are path:line:col

    def test_select_restricts_rules(self, tmp_path):
        tree = self._violations_tree(tmp_path)
        report = lint_paths([str(tree)], select=["RPL004"])
        assert set(report.counts_by_code()) == {"RPL004"}

    def test_ignore_drops_rules(self, tmp_path):
        tree = self._violations_tree(tmp_path)
        report = lint_paths([str(tree)], ignore=["RPL001", "RPL006"])
        assert set(report.counts_by_code()) == {
            "RPL002", "RPL003", "RPL004", "RPL005", "RPL007",
        }

    def test_cli_exit_codes(self, tmp_path, capsys):
        tree = self._violations_tree(tmp_path)
        assert lint_main([str(tree)]) == LintExit.FINDINGS
        capsys.readouterr()
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "ok.py").write_text("x = 1\n")
        assert lint_main([str(clean)]) == LintExit.OK
        capsys.readouterr()
        assert lint_main(["no/such/path"]) == LintExit.USAGE
        capsys.readouterr()
        assert lint_main(["--select", "RPL999", str(clean)]) == LintExit.USAGE

    def test_cli_json_output(self, tmp_path, capsys):
        tree = self._violations_tree(tmp_path)
        code = lint_main([str(tree), "--format", "json"])
        assert code == LintExit.FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == LintExit.OK
        out = capsys.readouterr().out
        for rule_code in ("RPL001", "RPL006"):
            assert rule_code in out

    def test_three_dess_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import ExitCode, main as cli_main

        tree = self._violations_tree(tmp_path)
        assert cli_main(["lint", str(tree)]) == ExitCode.LINT_FINDINGS
        capsys.readouterr()
        clean = tmp_path / "clean2"
        clean.mkdir()
        (clean / "ok.py").write_text("x = 1\n")
        assert cli_main(["lint", str(clean)]) == ExitCode.OK


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class TestBaseline:
    LEAKY = "def f(path):\n    h = open(path)\n    return 1\n"

    def _report(self, tmp_path, name="leaky.py"):
        target = tmp_path / name
        target.write_text(self.LEAKY)
        return lint_paths([str(target)], select=["RPL102"])

    def test_write_is_deterministic_and_sorted(self, tmp_path):
        report = self._report(tmp_path)
        out = tmp_path / "base.json"
        assert write_baseline(str(out), report.diagnostics) == 1
        first = out.read_text()
        assert first.endswith("\n")
        write_baseline(str(out), list(reversed(report.diagnostics)))
        assert out.read_text() == first

    def test_apply_filters_and_counts(self, tmp_path):
        report = self._report(tmp_path)
        assert len(report.diagnostics) == 1
        out = tmp_path / "base.json"
        write_baseline(str(out), report.diagnostics)
        fresh = self._report(tmp_path)
        apply_baseline(fresh, load_baseline(str(out)))
        assert fresh.diagnostics == []
        assert fresh.baselined == 1

    def test_fingerprint_ignores_line_numbers(self, tmp_path):
        report = self._report(tmp_path)
        out = tmp_path / "base.json"
        write_baseline(str(out), report.diagnostics)
        # Shift the finding down two lines: same fingerprint, still
        # baselined (messages are line-free by design).
        (tmp_path / "leaky.py").write_text("# pad\n# pad\n" + self.LEAKY)
        shifted = lint_paths(
            [str(tmp_path / "leaky.py")], select=["RPL102"]
        )
        apply_baseline(shifted, load_baseline(str(out)))
        assert shifted.diagnostics == []
        assert shifted.baselined == 1

    def test_new_finding_is_not_absorbed(self, tmp_path):
        report = self._report(tmp_path)
        out = tmp_path / "base.json"
        write_baseline(str(out), report.diagnostics)
        (tmp_path / "other.py").write_text(
            "def g(path):\n    s = open(path)\n    return 2\n"
        )
        fresh = lint_paths([str(tmp_path)], select=["RPL102"])
        apply_baseline(fresh, load_baseline(str(out)))
        assert len(fresh.diagnostics) == 1
        assert "other.py" in fresh.diagnostics[0].path

    def test_relative_and_absolute_paths_fingerprint_alike(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        report_abs = self._report(tmp_path)
        report_rel = lint_paths(["leaky.py"], select=["RPL102"])
        assert [fingerprint(d) for d in report_abs.diagnostics] == [
            fingerprint(d) for d in report_rel.diagnostics
        ]

    @pytest.mark.parametrize(
        "content",
        [
            "not json at all",
            '{"version": 99, "findings": []}',
            '{"version": 1, "findings": "nope"}',
            '{"version": 1, "findings": [{"code": "RPL100"}]}',
        ],
    )
    def test_malformed_baseline_raises(self, tmp_path, content):
        bad = tmp_path / "bad.json"
        bad.write_text(content)
        with pytest.raises(BaselineError):
            load_baseline(str(bad))

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "nope.json"))

    def test_cli_baseline_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "leaky.py"
        target.write_text(self.LEAKY)
        base = tmp_path / "base.json"
        assert lint_main([str(target)]) == LintExit.FINDINGS
        capsys.readouterr()
        assert (
            lint_main([str(target), "--baseline-write", str(base)])
            == LintExit.OK
        )
        assert "wrote 1 baseline entry" in capsys.readouterr().out
        assert (
            lint_main([str(target), "--baseline", str(base)]) == LintExit.OK
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_cli_missing_baseline_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        code = lint_main(
            [str(target), "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == LintExit.USAGE
        capsys.readouterr()

    def test_cli_json_reports_baselined(self, tmp_path, capsys):
        target = tmp_path / "leaky.py"
        target.write_text(self.LEAKY)
        base = tmp_path / "base.json"
        lint_main([str(target), "--baseline-write", str(base)])
        capsys.readouterr()
        code = lint_main(
            [str(target), "--baseline", str(base), "--format", "json"]
        )
        assert code == LintExit.OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["baselined"] == 1

    def test_three_dess_lint_baseline_passthrough(self, tmp_path, capsys):
        from repro.cli import ExitCode, main as cli_main

        target = tmp_path / "leaky.py"
        target.write_text(self.LEAKY)
        base = tmp_path / "base.json"
        assert (
            cli_main(["lint", str(target), "--baseline-write", str(base)])
            == ExitCode.OK
        )
        capsys.readouterr()
        assert (
            cli_main(["lint", str(target), "--baseline", str(base)])
            == ExitCode.OK
        )


# ----------------------------------------------------------------------
# exit-code enum
# ----------------------------------------------------------------------
class TestExitCodeEnum:
    def test_documented_values(self):
        from repro.cli import ExitCode

        assert ExitCode.OK == 0
        assert ExitCode.LINT_FINDINGS == 1
        assert ExitCode.USAGE == 2
        assert ExitCode.DATA == 3
        assert ExitCode.INTERNAL == 4
        assert ExitCode.QUARANTINED == 5
        assert ExitCode.INTEGRITY == 6
        assert ExitCode.JOBS_FAILED == 7

    def test_legacy_aliases_preserved(self):
        from repro import cli

        assert cli.EXIT_OK == cli.ExitCode.OK
        assert cli.EXIT_INTEGRITY == cli.ExitCode.INTEGRITY
        assert cli.EXIT_JOBS_FAILED == 7


# ----------------------------------------------------------------------
# self-hosting + catalog sync (the acceptance gates)
# ----------------------------------------------------------------------
class TestSelfHosting:
    def test_src_is_clean_against_committed_baseline(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        report = lint_paths([str(SRC), str(REPO_ROOT / "tests" / "faults.py")])
        baseline = load_baseline(str(REPO_ROOT / "lint-baseline.json"))
        apply_baseline(report, baseline)
        assert report.files_checked > 100
        assert report.diagnostics == [], render_text(report)
        # The baseline grandfathers exactly the known registry fast-path
        # findings; anything else in it would be silently absorbed debt.
        assert report.baselined == len(baseline)
        assert {code for code, _, _ in baseline} == {"RPL100"}

    def test_flow_rules_have_no_unbaselined_src_findings(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        report = lint_paths(
            [str(SRC)], select=["RPL100", "RPL101", "RPL102"]
        )
        apply_baseline(
            report, load_baseline(str(REPO_ROOT / "lint-baseline.json"))
        )
        assert report.diagnostics == [], render_text(report)

    def test_examples_and_benchmarks_are_clean(self):
        report = lint_paths(
            [str(REPO_ROOT / "examples"), str(REPO_ROOT / "benchmarks")]
        )
        assert report.diagnostics == [], render_text(report)


class TestCatalogSync:
    def test_every_emitted_metric_is_declared(self):
        # RPL002 *is* the AST sweep: zero findings over src/ means every
        # literal or prefix-resolvable metric name is in the catalog.
        report = lint_paths([str(SRC)], select=["RPL002"])
        assert report.diagnostics == [], render_text(report)

    def test_docs_table_is_in_sync(self):
        assert catalog.docs_in_sync(str(REPO_ROOT / "docs" / "OBSERVABILITY.md"))

    def test_known_and_unknown_names(self):
        assert catalog.is_known_metric("cache.hits")
        assert catalog.is_known_metric("pipeline.feature.eigenvalues")
        assert catalog.is_known_metric("jobs.re-extract")
        assert not catalog.is_known_metric("bogus.metric")
        assert catalog.matches_metric_prefix("jobs.")
        assert catalog.matches_metric_prefix("")  # fully dynamic: allowed
        assert not catalog.matches_metric_prefix("bogus.")

    def test_catalog_entries_are_well_formed(self):
        kinds = {"counter", "gauge", "histogram", "derived"}
        names = [spec.name for spec in catalog.CATALOG]
        assert len(names) == len(set(names)), "duplicate catalog names"
        for spec in catalog.CATALOG:
            assert spec.kind in kinds, spec.name
            assert spec.meaning
            assert spec.section in catalog.SECTION_ORDER

    def test_stale_docs_detected_and_rewritten(self, tmp_path):
        docs = tmp_path / "OBS.md"
        docs.write_text(
            "# header\n\n"
            f"{catalog.BEGIN_MARKER}\nstale stuff\n{catalog.END_MARKER}\n\n"
            "tail\n"
        )
        assert not catalog.docs_in_sync(str(docs))
        assert catalog.main(["--check", str(docs)]) == 1
        assert catalog.update_docs(str(docs)) is True
        assert catalog.docs_in_sync(str(docs))
        assert catalog.main(["--check", str(docs)]) == 0
        assert catalog.update_docs(str(docs)) is False
        text = docs.read_text()
        assert text.startswith("# header")
        assert text.rstrip().endswith("tail")

    def test_missing_markers_is_an_error(self, tmp_path):
        docs = tmp_path / "OBS.md"
        docs.write_text("no markers here\n")
        assert catalog.main(["--check", str(docs)]) == 2


# ----------------------------------------------------------------------
# mypy gate (runs only where mypy is installed, e.g. CI)
# ----------------------------------------------------------------------
@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_gate_on_strict_modules():
    result = subprocess.run(
        [
            "mypy",
            "-p", "repro.obs",
            "-p", "repro.robust",
            "-p", "repro.jobs",
            "-p", "repro.lint",
            "-m", "repro.search.api",
        ],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
