"""Failure injection for the persistence layer."""

import json
import os

import numpy as np
import pytest

from repro.db import ShapeDatabase, ShapeRecord, StorageError, load_records, save_records
from repro.features import FeaturePipeline
from repro.geometry import box


@pytest.fixture
def store(tmp_path):
    db = ShapeDatabase(FeaturePipeline(voxel_resolution=10))
    db.insert_mesh(box((2, 3, 4)), name="a", group="g")
    db.insert_mesh(box((1, 1, 1)), name="b")
    path = tmp_path / "db"
    db.save(path)
    return path


class TestCorruption:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError, match="manifest"):
            load_records(tmp_path)

    def test_bad_version(self, store):
        manifest_path = store / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["version"] = 999
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(StorageError, match="version"):
            load_records(store)

    def test_missing_feature_array(self, store):
        manifest_path = store / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["records"][0]["features"].append("ghost_feature")
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(StorageError, match="missing feature"):
            load_records(store)

    def test_missing_mesh_file(self, store):
        os.unlink(store / "meshes" / "1.off")
        with pytest.raises(StorageError, match="missing mesh"):
            load_records(store)

    def test_missing_mesh_tolerated_without_meshes(self, store):
        os.unlink(store / "meshes" / "1.off")
        records = load_records(store, load_meshes=False)
        assert len(records) == 2

    def test_corrupt_manifest_json(self, store):
        (store / "manifest.json").write_text("{ not json")
        with pytest.raises(json.JSONDecodeError):
            load_records(store)


class TestAtomicity:
    def test_no_tmp_files_left_after_save(self, store):
        leftovers = [f for f in os.listdir(store) if f.endswith(".tmp")]
        assert leftovers == []

    def test_resave_overwrites_consistently(self, store):
        records = load_records(store)
        save_records(records, store)
        again = load_records(store)
        assert len(again) == len(records)
        assert np.allclose(
            again[0].features["principal_moments"],
            records[0].features["principal_moments"],
        )

    def test_feature_only_records(self, tmp_path):
        rec = ShapeRecord(
            shape_id=5, name="vecs-only", features={"f": np.arange(3.0)}
        )
        save_records([rec], tmp_path / "s")
        back = load_records(tmp_path / "s")
        assert back[0].mesh is None
        assert np.array_equal(back[0].features["f"], np.arange(3.0))

    def test_empty_database_roundtrip(self, tmp_path):
        save_records([], tmp_path / "empty")
        assert load_records(tmp_path / "empty") == []
