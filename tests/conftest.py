"""Shared fixtures: small meshes and the cached evaluation database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generator import load_or_build_database
from repro.geometry import box, cylinder, extrude_polygon, torus, tube, uv_sphere
from repro.robust import chaos
from repro.search import SearchEngine


@pytest.fixture(scope="session", autouse=True)
def chaos_from_env():
    """Arm the ``REPRO_CHAOS`` fault plan (if any) for the whole run.

    The CI chaos job sets the env var to a canned plan and re-runs the
    tier-1 suite under it; an unset var keeps this a no-op.
    """
    armed = chaos.arm_from_env()
    yield
    if armed:
        chaos.controller().disarm()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def unit_box():
    return box((1.0, 1.0, 1.0))


@pytest.fixture
def asym_box():
    return box((2.0, 4.0, 6.0))


@pytest.fixture
def small_cylinder():
    return cylinder(1.0, 3.0, 24)


@pytest.fixture
def small_torus():
    return torus(3.0, 0.8, 32, 12)


@pytest.fixture
def small_tube():
    return tube(2.0, 1.0, 1.5, 24)


@pytest.fixture
def small_sphere():
    return uv_sphere(1.0, 12, 24)


@pytest.fixture
def l_bracket():
    return extrude_polygon(
        [[0, 0], [6, 0], [6, 1], [1, 1], [1, 6], [0, 6]], 1.0, name="l_bracket"
    )


@pytest.fixture(scope="session")
def eval_db():
    """The cached 113-shape evaluation database (built once per machine)."""
    return load_or_build_database()


@pytest.fixture(scope="session")
def eval_engine(eval_db):
    return SearchEngine(eval_db)
