"""Mesh repair: orientation fixing, degeneracy removal, validation."""

import numpy as np
import pytest

from repro.geometry import (
    MeshError,
    TriangleMesh,
    box,
    fix_orientation,
    remove_degenerate_faces,
    repair_mesh,
    signed_volume,
    uv_sphere,
    validate_mesh,
    volume,
)


def scrambled_box(seed=0):
    rng = np.random.default_rng(seed)
    mesh = box((2, 3, 4))
    faces = mesh.faces.copy()
    flip = rng.random(len(faces)) < 0.5
    faces[flip] = faces[flip][:, ::-1]
    return TriangleMesh(mesh.vertices, faces)


class TestValidate:
    def test_clean_box(self, unit_box):
        report = validate_mesh(unit_box)
        assert report.is_clean
        assert report.n_boundary_edges == 0
        assert report.euler_characteristic == 2
        assert "clean" in report.format()

    def test_detects_inconsistent_winding(self):
        report = validate_mesh(scrambled_box())
        assert report.n_inconsistent_edges > 0
        assert not report.is_clean
        assert "inconsistently" in report.format()

    def test_detects_boundary(self):
        tri = TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        report = validate_mesh(tri)
        assert report.n_boundary_edges == 3
        assert not report.is_watertight

    def test_detects_inward_orientation(self, unit_box):
        report = validate_mesh(unit_box.flipped())
        assert not report.is_outward

    def test_detects_degenerate_faces(self):
        mesh = TriangleMesh(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [2, 0, 0]],
            [[0, 1, 2], [0, 1, 3]],  # second face is collinear
        )
        assert validate_mesh(mesh).n_degenerate_faces == 1

    def test_detects_nonmanifold(self):
        mesh = TriangleMesh(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [0, -1, 0]],
            [[0, 1, 2], [0, 1, 3], [0, 1, 4]],
        )
        assert validate_mesh(mesh).n_nonmanifold_edges == 1

    def test_empty_rejected(self):
        with pytest.raises(MeshError):
            validate_mesh(TriangleMesh([], []))


class TestFixOrientation:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_restores_scrambled_box(self, seed):
        fixed = fix_orientation(scrambled_box(seed))
        assert signed_volume(fixed) == pytest.approx(24.0)
        assert validate_mesh(fixed).is_clean

    def test_flips_inward_sphere(self):
        fixed = fix_orientation(uv_sphere(1.0, 8, 12).flipped())
        assert signed_volume(fixed) > 0

    def test_handles_multiple_components(self):
        a = scrambled_box(3)
        b = box((1, 1, 1), center=(10, 0, 0)).flipped()
        combined = TriangleMesh.concatenate([a, b])
        fixed = fix_orientation(combined)
        assert signed_volume(fixed) == pytest.approx(24.0 + 1.0)

    def test_idempotent_on_clean_mesh(self, unit_box):
        fixed = fix_orientation(unit_box)
        assert np.array_equal(fixed.faces, unit_box.faces)

    def test_empty_mesh_passthrough(self):
        assert fix_orientation(TriangleMesh([], [])).n_faces == 0


class TestRemoveDegenerate:
    def test_drops_zero_area(self):
        mesh = TriangleMesh(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [2, 0, 0]],
            [[0, 1, 2], [0, 1, 3]],
        )
        out = remove_degenerate_faces(mesh)
        assert out.n_faces == 1

    def test_keeps_real_faces(self, unit_box):
        assert remove_degenerate_faces(unit_box).n_faces == unit_box.n_faces


class TestRepairPipeline:
    def test_full_repair(self):
        bad = scrambled_box(5)
        fixed = repair_mesh(bad)
        report = validate_mesh(fixed)
        assert report.is_clean
        assert volume(fixed) == pytest.approx(24.0)

    def test_repair_rejects_all_degenerate(self):
        mesh = TriangleMesh(
            [[0, 0, 0], [1, 0, 0], [2, 0, 0]], [[0, 1, 2]]
        )
        with pytest.raises(MeshError):
            repair_mesh(mesh)

    def test_features_equal_after_repair(self):
        from repro.moments import moment_invariants

        clean = box((2, 3, 4))
        repaired = repair_mesh(scrambled_box(2))
        assert np.allclose(
            moment_invariants(repaired), moment_invariants(clean), rtol=1e-9
        )
