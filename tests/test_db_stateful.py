"""Stateful property test: ShapeDatabase vs a plain-dict oracle through
insert/delete/query churn (features precomputed to keep steps fast)."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.db import ShapeDatabase, ShapeRecord

DIM = 3
coord = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)
vector = st.tuples(*([coord] * DIM))
group_name = st.sampled_from(["a", "b", "c", None])


class ShapeDatabaseMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = ShapeDatabase(pipeline=None, index_max_entries=4)
        self.oracle = {}  # id -> (vector, group)

    @rule(vec=vector, group=group_name)
    def insert(self, vec, group):
        record = ShapeRecord(
            shape_id=0,
            name="s",
            group=group,
            features={"f": np.asarray(vec, dtype=np.float64)},
        )
        new_id = self.db.insert_record(record)
        assert new_id not in self.oracle
        # The database canonicalizes stored vectors to float32; the
        # oracle must model the same rounding to predict distances.
        self.oracle[new_id] = (np.asarray(vec, dtype=np.float32), group)

    @precondition(lambda self: self.oracle)
    @rule(data=st.data())
    def delete(self, data):
        victim = data.draw(st.sampled_from(sorted(self.oracle)))
        self.db.delete(victim)
        del self.oracle[victim]

    @precondition(lambda self: self.oracle)
    @rule(q=vector, k=st.integers(1, 5))
    def knn_matches_oracle(self, q, k):
        got = self.db.nearest("f", np.asarray(q), k=k)
        want = sorted(
            (
                (float(np.linalg.norm(vec - np.asarray(q))), shape_id)
                for shape_id, (vec, _) in self.oracle.items()
            )
        )[:k]
        assert np.allclose(
            sorted(d for _, d in got), [d for d, _ in want]
        )

    @precondition(lambda self: self.oracle)
    @rule()
    def classification_map_matches(self):
        cmap = self.db.classification_map()
        expected = {}
        for shape_id, (_, group) in self.oracle.items():
            if group is not None:
                expected.setdefault(group, []).append(shape_id)
        assert {g: sorted(v) for g, v in cmap.items()} == {
            g: sorted(v) for g, v in expected.items()
        }

    @invariant()
    def sizes_agree(self):
        assert len(self.db) == len(self.oracle)
        assert self.db.ids() == sorted(self.oracle)


TestShapeDatabaseStateful = ShapeDatabaseMachine.TestCase
TestShapeDatabaseStateful.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
