"""Integral properties: area, volume, centroid, design ratios."""

import numpy as np
import pytest

from repro.geometry import (
    MeshError,
    TriangleMesh,
    aspect_ratios,
    box,
    centroid,
    signed_volume,
    surface_area,
    surface_centroid,
    surface_to_volume_ratio,
    translate,
    volume,
)


class TestVolume:
    def test_box(self):
        assert volume(box((2, 3, 4))) == pytest.approx(24.0)

    def test_signed_volume_positive_for_outward(self, unit_box):
        assert signed_volume(unit_box) > 0

    def test_signed_volume_negative_for_inward(self, unit_box):
        assert signed_volume(unit_box.flipped()) < 0

    def test_translation_invariant(self, asym_box):
        moved = translate(asym_box, [10, -20, 30])
        assert volume(moved) == pytest.approx(volume(asym_box))

    def test_open_mesh_near_zero(self):
        tri = TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        assert volume(tri) == pytest.approx(0.0)


class TestCentroid:
    def test_centered_box(self, asym_box):
        assert np.allclose(centroid(asym_box), 0.0, atol=1e-12)

    def test_translated_box(self, asym_box):
        moved = translate(asym_box, [1, 2, 3])
        assert np.allclose(centroid(moved), [1, 2, 3])

    def test_zero_volume_raises(self):
        tri = TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        with pytest.raises(MeshError):
            centroid(tri)

    def test_surface_centroid_of_box(self, unit_box):
        assert np.allclose(surface_centroid(unit_box), 0.0, atol=1e-12)

    def test_surface_centroid_open_mesh_ok(self):
        tri = TriangleMesh([[0, 0, 0], [3, 0, 0], [0, 3, 0]], [[0, 1, 2]])
        assert np.allclose(surface_centroid(tri), [1, 1, 0])

    def test_surface_centroid_empty_raises(self):
        with pytest.raises(MeshError):
            surface_centroid(TriangleMesh([[0, 0, 0]], np.zeros((0, 3))))


class TestDesignRatios:
    def test_aspect_ratios_of_box(self):
        r12, r23 = aspect_ratios(box((8, 4, 2)))
        assert r12 == pytest.approx(2.0)
        assert r23 == pytest.approx(2.0)

    def test_aspect_ratios_of_cube(self, unit_box):
        assert aspect_ratios(unit_box) == pytest.approx((1.0, 1.0))

    def test_aspect_ratio_flat_mesh_guarded(self):
        flat = TriangleMesh(
            [[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]], [[0, 1, 2], [0, 2, 3]]
        )
        r12, r23 = aspect_ratios(flat)
        assert np.isfinite(r23)

    def test_surface_to_volume_box(self):
        assert surface_to_volume_ratio(box((2, 2, 2))) == pytest.approx(24 / 8)

    def test_shell_like_has_larger_ratio(self):
        thin = surface_to_volume_ratio(box((10, 10, 0.1)))
        chunky = surface_to_volume_ratio(box((10, 10, 10)))
        assert thin > chunky * 10

    def test_surface_to_volume_zero_volume_raises(self):
        tri = TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        with pytest.raises(MeshError):
            surface_to_volume_ratio(tri)


class TestArea:
    def test_box_area(self):
        assert surface_area(box((1, 2, 3))) == pytest.approx(2 * (2 + 3 + 6))

    def test_single_triangle(self):
        tri = TriangleMesh([[0, 0, 0], [2, 0, 0], [0, 2, 0]], [[0, 1, 2]])
        assert surface_area(tri) == pytest.approx(2.0)
