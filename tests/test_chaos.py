"""The chaos layer: deterministic fault injection and crash recovery.

Three tiers of coverage:

1. the :mod:`repro.robust.chaos` framework itself — plan parsing,
   triggers, determinism, the four fault kinds;
2. storage under injected faults — a torn packed-store write at *every*
   write site either leaves the old database intact (raising faults =
   crash before the atomic swap) or is caught loudly downstream
   (silent faults = corruption promoted past its sealed checksum);
3. the job-queue journal torn mid-record, recovering through replay.
"""

from __future__ import annotations

import json
import os
import signal

import numpy as np
import pytest

from repro.db import (
    ShapeRecord,
    StorageError,
    load_packed_features,
    load_records,
    salvage_records,
    save_records,
    verify_database,
)
from repro.jobs import JobQueue
from repro.robust import chaos
from repro.robust.chaos import (
    ChaosPlanError,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    active_plan,
)

DIM_A = 6
DIM_B = 3


def make_records(n: int = 4) -> list:
    """Feature-only records with two packable (consistent-dim) families."""
    rng = np.random.default_rng(7)
    return [
        ShapeRecord(
            shape_id=i + 1,
            name=f"shape-{i + 1}",
            features={
                "fam_a": rng.normal(size=DIM_A),
                "fam_b": rng.normal(size=DIM_B),
            },
        )
        for i in range(n)
    ]


def assert_features_match(loaded, originals) -> None:
    by_id = {rec.shape_id: rec for rec in loaded}
    for rec in originals:
        back = by_id[rec.shape_id]
        for fname, vec in rec.features.items():
            np.testing.assert_allclose(
                np.asarray(back.features[fname], dtype=np.float64),
                np.asarray(vec, dtype=np.float64),
                rtol=1e-6,
            )


# ----------------------------------------------------------------------
# Plan parsing and validation
# ----------------------------------------------------------------------
class TestFaultPlanParsing:
    def test_inline_json(self):
        plan = FaultPlan.parse(
            '{"seed": 9, "faults": [{"point": "p", "kind": "error", "at": 1}]}'
        )
        assert plan.seed == 9
        assert plan.faults[0].point == "p"
        assert plan.faults[0].kind == "error"

    def test_plan_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {"seed": 1, "faults": [{"point": "x", "kind": "latency",
                                        "every": 2, "delay_s": 0.001}]}
            )
        )
        plan = FaultPlan.parse(str(path))
        assert plan.faults[0].every == 2

    def test_missing_plan_file(self, tmp_path):
        with pytest.raises(ChaosPlanError, match="cannot read"):
            FaultPlan.parse(str(tmp_path / "nope.json"))

    def test_invalid_json(self):
        with pytest.raises(ChaosPlanError, match="not valid JSON"):
            FaultPlan.parse("{ not json")

    def test_unknown_plan_field(self):
        with pytest.raises(ChaosPlanError, match="unknown plan field"):
            FaultPlan.from_dict({"seed": 0, "faults": [], "typo": 1})

    def test_unknown_fault_field(self):
        with pytest.raises(ChaosPlanError, match="unknown fault field"):
            FaultSpec.from_dict({"point": "p", "kind": "error", "at": 1,
                                 "wat": True})

    @pytest.mark.parametrize(
        "spec, match",
        [
            ({"point": "", "kind": "error", "at": 1}, "non-empty 'point'"),
            ({"point": "p", "kind": "frob", "at": 1}, "unknown fault kind"),
            ({"point": "p", "kind": "error"}, "exactly one trigger"),
            ({"point": "p", "kind": "error", "at": 1, "rate": 0.5},
             "exactly one trigger"),
            ({"point": "p", "kind": "error", "at": 0}, "1-based"),
            ({"point": "p", "kind": "error", "every": 0}, "'every'"),
            ({"point": "p", "kind": "error", "rate": 1.5}, "'rate'"),
            ({"point": "p", "kind": "error", "at": 1, "times": 0}, "'times'"),
            ({"point": "p", "kind": "latency", "at": 1, "delay_s": 0.0},
             "'delay_s'"),
            ({"point": "p", "kind": "error", "at": 1, "exception": "Kaboom"},
             "unknown exception"),
            ({"point": "p", "kind": "torn", "at": 1, "trim_bytes": -1},
             "'trim_bytes'"),
            ({"point": "p", "kind": "torn", "at": 1, "keep_fraction": 1.0},
             "'keep_fraction'"),
            ({"point": "p", "kind": "torn", "at": 1, "flip_bytes": -1},
             "'flip_bytes'"),
            ({"point": "p", "kind": "torn", "at": 1, "flip_bytes": 2,
              "trim_bytes": 8}, "mutually exclusive"),
            ({"point": "p", "kind": "kill", "at": 1, "signal": "SIGNOPE"},
             "unknown signal"),
        ],
    )
    def test_invalid_specs(self, spec, match):
        with pytest.raises(ChaosPlanError, match=match):
            FaultSpec.from_dict(spec)

    def test_chaos_plan_error_is_value_error(self):
        assert issubclass(ChaosPlanError, ValueError)

    def test_injected_fault_is_os_error(self):
        assert issubclass(InjectedFaultError, OSError)

    def test_to_dict_round_trips_triggers(self):
        plan = FaultPlan.parse(
            '{"seed": 3, "faults": [{"point": "p", "kind": "error",'
            ' "every": 4, "times": 2}]}'
        )
        back = FaultPlan.from_dict(plan.to_dict())
        assert back.faults[0].every == 4
        assert back.faults[0].times == 2


# ----------------------------------------------------------------------
# Triggers and determinism
# ----------------------------------------------------------------------
def fire_pattern(plan, point: str, hits: int) -> list:
    """Which of ``hits`` injections raised under ``plan``."""
    fired = []
    with active_plan(plan):
        for i in range(hits):
            try:
                chaos.inject(point)
            except InjectedFaultError:
                fired.append(i)
    return fired


class TestTriggers:
    def test_at_fires_exactly_once_at_nth_hit(self):
        plan = {"faults": [{"point": "p", "kind": "error", "at": 3}]}
        assert fire_pattern(plan, "p", 6) == [2]

    def test_at_with_times_budget_refires(self):
        plan = {"faults": [{"point": "p", "kind": "error", "at": 2,
                            "times": 3}]}
        # `at` pins the *first* fire; the remaining budget never matches
        # again (hits != at), so the budget caps, not extends.
        assert fire_pattern(plan, "p", 8) == [1]

    def test_every_fires_periodically(self):
        plan = {"faults": [{"point": "p", "kind": "error", "every": 2}]}
        assert fire_pattern(plan, "p", 7) == [1, 3, 5]

    def test_every_with_times_cap(self):
        plan = {"faults": [{"point": "p", "kind": "error", "every": 2,
                            "times": 2}]}
        assert fire_pattern(plan, "p", 10) == [1, 3]

    def test_rate_is_deterministic_for_a_seed(self):
        plan = {"seed": 42,
                "faults": [{"point": "p", "kind": "error", "rate": 0.3}]}
        first = fire_pattern(plan, "p", 200)
        second = fire_pattern(plan, "p", 200)
        assert first == second
        assert 20 <= len(first) <= 100  # ~30% of 200

    def test_rate_differs_across_seeds(self):
        base = {"faults": [{"point": "p", "kind": "error", "rate": 0.3}]}
        a = fire_pattern({"seed": 1, **base}, "p", 200)
        b = fire_pattern({"seed": 2, **base}, "p", 200)
        assert a != b

    def test_glob_point_matches_family(self):
        plan = {"faults": [{"point": "storage.*", "kind": "error", "at": 1}]}
        assert fire_pattern(plan, "storage.packed.write", 2) == [0]

    def test_glob_point_misses_other_family(self):
        plan = {"faults": [{"point": "storage.*", "kind": "error", "at": 1}]}
        assert fire_pattern(plan, "jobs.journal.append", 3) == []

    def test_hits_and_fired_counters(self):
        plan = {"faults": [{"point": "p", "kind": "error", "at": 2}]}
        with active_plan(plan) as ctl:
            for _ in range(4):
                try:
                    chaos.inject("p")
                except InjectedFaultError:
                    pass
            chaos.inject("q")
            assert ctl.hits == {"p": 4, "q": 1}
            assert ctl.fired == {"p": 1}

    def test_disarmed_inject_is_a_noop(self):
        ctl = chaos.controller()
        assert not ctl.armed
        before = dict(ctl.hits)
        chaos.inject("p")
        assert ctl.hits == before

    def test_active_plan_always_disarms(self):
        with pytest.raises(RuntimeError):
            with active_plan({"faults": []}):
                assert chaos.controller().armed
                raise RuntimeError("boom")
        assert not chaos.controller().armed

    def test_arm_from_env(self):
        env = {"REPRO_CHAOS":
               '{"faults": [{"point": "p", "kind": "error", "at": 1}]}'}
        try:
            assert chaos.arm_from_env(env) is True
            assert chaos.controller().armed
            with pytest.raises(InjectedFaultError):
                chaos.inject("p")
        finally:
            chaos.controller().disarm()
        assert chaos.arm_from_env({}) is False


# ----------------------------------------------------------------------
# Fault kinds
# ----------------------------------------------------------------------
class TestFaultKinds:
    def test_error_kind_raises_named_exception(self):
        plan = {"faults": [{"point": "p", "kind": "error", "at": 1,
                            "exception": "ConnectionResetError"}]}
        with active_plan(plan):
            with pytest.raises(ConnectionResetError):
                chaos.inject("p")

    def test_default_error_carries_taxonomy_code(self):
        plan = {"faults": [{"point": "p", "kind": "error", "at": 1}]}
        with active_plan(plan):
            with pytest.raises(InjectedFaultError) as err:
                chaos.inject("p")
        assert err.value.code == "chaos.injected"

    def test_latency_kind_sleeps(self):
        import time as _time

        plan = {"faults": [{"point": "p", "kind": "latency", "at": 1,
                            "delay_s": 0.05}]}
        with active_plan(plan):
            start = _time.monotonic()
            chaos.inject("p")
            assert _time.monotonic() - start >= 0.05

    def test_torn_truncates_and_raises(self, tmp_path):
        victim = tmp_path / "data.bin"
        victim.write_bytes(b"x" * 100)
        plan = {"faults": [{"point": "p", "kind": "torn", "at": 1,
                            "trim_bytes": 30}]}
        with active_plan(plan):
            with pytest.raises(InjectedFaultError) as err:
                chaos.inject("p", path=str(victim))
        assert err.value.code == "chaos.torn_write"
        assert victim.stat().st_size == 70

    def test_silent_torn_does_not_raise(self, tmp_path):
        victim = tmp_path / "data.bin"
        victim.write_bytes(b"x" * 100)
        plan = {"faults": [{"point": "p", "kind": "torn", "at": 1,
                            "keep_fraction": 0.25, "silent": True}]}
        with active_plan(plan):
            chaos.inject("p", path=str(victim))  # no raise
        assert victim.stat().st_size == 25

    def test_torn_on_directory_picks_a_file(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"x" * 40)
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.bin").write_bytes(b"x" * 40)
        plan = {"faults": [{"point": "p", "kind": "torn", "at": 1,
                            "trim_bytes": 10, "silent": True}]}
        with active_plan(plan):
            chaos.inject("p", path=str(tmp_path))
        sizes = sorted(
            p.stat().st_size
            for p in (tmp_path / "a.bin", tmp_path / "sub" / "b.bin")
        )
        assert sizes == [30, 40]  # exactly one file torn

    def test_torn_without_path_is_harmless(self):
        plan = {"faults": [{"point": "p", "kind": "torn", "at": 1,
                            "silent": True}]}
        with active_plan(plan):
            chaos.inject("p")  # nothing to tear, nothing raised

    def test_torn_directory_rotation_uses_captured_seq(self, tmp_path):
        """Regression (RPL100): `_tear` must use the fired count captured
        under the controller lock when the action was created, not
        re-read the shared `fired` dict after the lock is dropped — a
        concurrent hit in between would skew the rotation."""
        from repro.robust.chaos import ChaosController, _Action

        (tmp_path / "a.bin").write_bytes(b"x" * 40)
        (tmp_path / "b.bin").write_bytes(b"x" * 40)
        controller = ChaosController()
        spec = FaultSpec(point="p", kind="torn", trim_bytes=10, silent=True)
        # Simulate a racing hit() having bumped the shared counter after
        # this action's seq was captured: seq=2 must still pick the
        # second file, whatever `fired` says now.
        controller.fired["p"] = 99
        controller._tear(_Action(spec, "p", str(tmp_path), seq=2))
        assert (tmp_path / "a.bin").stat().st_size == 40
        assert (tmp_path / "b.bin").stat().st_size == 30

    def test_consecutive_torn_fires_rotate_files(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"x" * 40)
        (tmp_path / "b.bin").write_bytes(b"x" * 40)
        plan = {"faults": [{"point": "p", "kind": "torn", "every": 1,
                            "times": 2, "trim_bytes": 10, "silent": True}]}
        with active_plan(plan):
            chaos.inject("p", path=str(tmp_path))
            chaos.inject("p", path=str(tmp_path))
        assert (tmp_path / "a.bin").stat().st_size == 30
        assert (tmp_path / "b.bin").stat().st_size == 30

    def test_armed_and_plan_read_under_lock(self):
        """Regression (RPL100): the `armed`/`plan` properties take the
        controller lock instead of reading `_plan` lock-free."""
        from repro.robust.chaos import ChaosController

        controller = ChaosController()

        class RecordingLock:
            def __init__(self, inner):
                self._inner = inner
                self.entries = 0

            def __enter__(self):
                self.entries += 1
                return self._inner.__enter__()

            def __exit__(self, *exc_info):
                return self._inner.__exit__(*exc_info)

        controller._lock = RecordingLock(controller._lock)
        before = controller._lock.entries
        assert controller.armed is False
        assert controller.plan is None
        assert controller._lock.entries == before + 2

    def test_torn_flip_bytes_keeps_length_and_damages_content(self, tmp_path):
        victim = tmp_path / "data.bin"
        original = bytes(range(100))
        victim.write_bytes(original)
        plan = {"faults": [{"point": "p", "kind": "torn", "at": 1,
                            "flip_bytes": 4, "silent": True}]}
        with active_plan(plan):
            chaos.inject("p", path=str(victim))
        after = victim.read_bytes()
        assert len(after) == 100  # length unchanged — no truncation
        flipped = [i for i in range(100) if after[i] != original[i]]
        assert flipped == [0, 25, 50, 75]  # evenly spaced, incl. offset 0
        for i in flipped:
            assert after[i] == original[i] ^ 0xFF

    def test_torn_flip_bytes_is_deterministic(self, tmp_path):
        plan = {"faults": [{"point": "p", "kind": "torn", "at": 1,
                            "flip_bytes": 3, "silent": True}]}
        damaged = []
        for name in ("a.bin", "b.bin"):
            victim = tmp_path / name
            victim.write_bytes(b"\x00" * 64)
            with active_plan(plan):
                chaos.inject("p", path=str(victim))
            damaged.append(victim.read_bytes())
        assert damaged[0] == damaged[1]  # same plan -> same flips

    def test_torn_flip_bytes_raises_unless_silent(self, tmp_path):
        victim = tmp_path / "data.bin"
        victim.write_bytes(b"x" * 10)
        plan = {"faults": [{"point": "p", "kind": "torn", "at": 1,
                            "flip_bytes": 1}]}
        with active_plan(plan):
            with pytest.raises(InjectedFaultError) as err:
                chaos.inject("p", path=str(victim))
        assert err.value.code == "chaos.torn_write"
        assert victim.stat().st_size == 10

    def test_kill_kind_sends_signal(self):
        received = []
        previous = signal.signal(
            signal.SIGUSR1, lambda signum, frame: received.append(signum)
        )
        try:
            plan = {"faults": [{"point": "p", "kind": "kill", "at": 1,
                                "signal": "SIGUSR1"}]}
            with active_plan(plan):
                chaos.inject("p")
        finally:
            signal.signal(signal.SIGUSR1, previous)
        assert received == [signal.SIGUSR1]


# ----------------------------------------------------------------------
# Storage under injected faults
# ----------------------------------------------------------------------
def packed_write_hits(tmp_path) -> int:
    """How many times one save hits ``storage.packed.write``."""
    with active_plan(FaultPlan()) as ctl:  # armed, no faults: count hits
        save_records(make_records(), tmp_path / "probe")
        return ctl.hits.get("storage.packed.write", 0)


class TestStorageChaos:
    def test_save_covers_the_expected_injection_points(self, tmp_path):
        with active_plan(FaultPlan()) as ctl:
            save_records(make_records(), tmp_path / "db")
            hits = dict(ctl.hits)
        # Two packable families x three files (matrix/ids/mask).
        assert hits["storage.packed.write"] == 6
        assert hits["storage.features.write"] == 1
        assert hits["storage.manifest.write"] == 1
        assert hits["storage.save.commit"] == 1
        assert hits["storage.save.swap"] == 1

    def test_torn_write_at_every_packed_site_preserves_old_database(
        self, tmp_path
    ):
        """Acceptance (b), raising half: a torn write at *each* of the
        packed write sites crashes the save before the atomic swap, so
        the previously saved database survives bit-for-bit."""
        originals = make_records()
        target = tmp_path / "db"
        save_records(originals, target)
        sites = packed_write_hits(tmp_path)
        assert sites == 6
        replacement = make_records(6)
        for nth in range(1, sites + 1):
            plan = {"faults": [{"point": "storage.packed.write",
                                "kind": "torn", "at": nth,
                                "trim_bytes": 64}]}
            with active_plan(plan):
                with pytest.raises(InjectedFaultError):
                    save_records(replacement, target)
            assert verify_database(target) == {}
            survivors = load_records(target)
            assert len(survivors) == len(originals)
            assert_features_match(survivors, originals)

    @pytest.mark.parametrize(
        "point", ["storage.features.write", "storage.manifest.write"]
    )
    def test_torn_write_at_archive_sites_preserves_old_database(
        self, tmp_path, point
    ):
        originals = make_records()
        target = tmp_path / "db"
        save_records(originals, target)
        plan = {"faults": [{"point": point, "kind": "torn", "at": 1,
                            "trim_bytes": 32}]}
        with active_plan(plan):
            with pytest.raises(InjectedFaultError):
                save_records(make_records(6), target)
        assert verify_database(target) == {}
        assert_features_match(load_records(target), originals)

    def test_injected_io_error_during_save_rolls_back(self, tmp_path):
        originals = make_records()
        target = tmp_path / "db"
        save_records(originals, target)
        plan = {"faults": [{"point": "storage.save.swap", "kind": "error",
                            "at": 1, "exception": "OSError"}]}
        with active_plan(plan):
            with pytest.raises(OSError):
                save_records(make_records(6), target)
        # The old database was renamed away and must be rolled back.
        assert verify_database(target) == {}
        assert len(load_records(target)) == len(originals)

    def test_silent_torn_packed_write_never_loads_silently_wrong(
        self, tmp_path
    ):
        """Acceptance (b), silent half at the write sites: the file is
        truncated *before* its checksum is computed, so the checksum
        seals the damage and the save succeeds.  The load side must
        still refuse the tier loudly (strict) or rebuild from records
        (salvage) — never serve wrong vectors."""
        originals = make_records()
        for nth in range(1, 7):
            target = tmp_path / f"db-{nth}"
            plan = {"faults": [{"point": "storage.packed.write",
                                "kind": "torn", "at": nth,
                                "keep_fraction": 0.25, "silent": True}]}
            with active_plan(plan):
                save_records(originals, target)
            with pytest.raises(StorageError, match="packed"):
                load_packed_features(target, strict=True)
            assert load_packed_features(target, strict=False) is None
            salvaged = load_records(target, strict=False)
            assert_features_match(salvaged, originals)

    def test_silent_torn_after_checksum_seal_fails_verify_loudly(
        self, tmp_path
    ):
        """Acceptance (b), the nastier silent case: corruption lands
        *after* every checksum was sealed (at the commit point), so it
        is promoted into the live directory — and ``verify_database``
        must report it, and a strict load must refuse it."""
        target = tmp_path / "db"
        plan = {"faults": [{"point": "storage.save.commit", "kind": "torn",
                            "at": 1, "keep_fraction": 0.3, "silent": True}]}
        with active_plan(plan):
            save_records(make_records(), target)
        problems = verify_database(target)
        assert problems, "promoted corruption must not verify clean"
        with pytest.raises(StorageError):
            load_records(target, strict=True)
        # Salvage still comes up (possibly dropping records) and says so.
        records, dropped = salvage_records(target)
        assert len(records) + len(dropped) >= 1

    def test_truncated_packed_npy_tail(self, tmp_path):
        """Satellite: a torn tail on one packed matrix is caught by its
        manifest checksum; salvage rebuilds the tier from records."""
        target = tmp_path / "db"
        originals = make_records()
        save_records(originals, target)
        victim = target / "packed" / "fam_a.matrix.npy"
        os.truncate(victim, victim.stat().st_size - 5)
        problems = verify_database(target)
        assert "packed/fam_a.matrix.npy" in problems
        assert "checksum mismatch" in problems["packed/fam_a.matrix.npy"]
        with pytest.raises(StorageError, match="fam_a"):
            load_packed_features(target, strict=True)
        assert load_packed_features(target, strict=False) is None
        assert_features_match(load_records(target, strict=False), originals)

    def test_checksum_mismatch_on_exactly_one_family(self, tmp_path):
        """Satellite: damage to one family's ids file is attributed to
        that file alone — no record-level fallout, since the canonical
        per-record archive is untouched."""
        target = tmp_path / "db"
        originals = make_records()
        save_records(originals, target)
        victim = target / "packed" / "fam_b.ids.npy"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(bytes(blob))
        problems = verify_database(target)
        assert set(problems) == {"packed/fam_b.ids.npy"}
        with pytest.raises(StorageError, match="fam_b"):
            load_packed_features(target, strict=True)
        salvaged = load_records(target, strict=False)
        assert_features_match(salvaged, originals)


# ----------------------------------------------------------------------
# Job-queue journal under injected faults
# ----------------------------------------------------------------------
class TestJournalChaos:
    def test_silent_torn_append_recovers_on_replay(self, tmp_path):
        """Satellite: a journal record torn mid-write (the page never
        hit disk) is counted corrupt on reopen; every earlier record
        replays intact."""
        path = tmp_path / "jobs.jsonl"
        with JobQueue(path) as queue:
            first = queue.enqueue("re-extract", {"shape_id": 1})
            queue.enqueue("re-extract", {"shape_id": 2})
            job = queue.claim()
            queue.complete(job)
            plan = {"faults": [{"point": "jobs.journal.append",
                                "kind": "torn", "at": 1, "trim_bytes": 9,
                                "silent": True}]}
            with active_plan(plan):
                queue.enqueue("re-extract", {"shape_id": 3})
        with JobQueue(path) as reopened:
            assert reopened.corrupt_lines == 1
            kinds = {}
            while True:
                job = reopened.claim()
                if job is None:
                    break
                kinds[job.payload["shape_id"]] = job.type
            # shape 1 completed, shape 2 replays; the torn shape-3
            # record is dropped, not half-applied.
            assert set(kinds) == {2}
        assert first.payload == {"shape_id": 1}

    def test_raising_torn_append_surfaces_and_queue_survives(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with JobQueue(path) as queue:
            queue.enqueue("re-extract", {"shape_id": 1})
            plan = {"faults": [{"point": "jobs.journal.append",
                                "kind": "torn", "at": 1, "trim_bytes": 5}]}
            with active_plan(plan):
                with pytest.raises(InjectedFaultError):
                    queue.enqueue("re-extract", {"shape_id": 2})
        with JobQueue(path) as reopened:
            assert reopened.corrupt_lines == 1
            job = reopened.claim()
            assert job is not None and job.payload["shape_id"] == 1
            assert reopened.claim() is None

    def test_injected_error_on_replay_propagates(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with JobQueue(path) as queue:
            queue.enqueue("re-extract", {"shape_id": 1})
        plan = {"faults": [{"point": "jobs.journal.replay", "kind": "error",
                            "at": 1}]}
        with active_plan(plan):
            with pytest.raises(InjectedFaultError):
                JobQueue(path)
