"""ShardedRTree: per-shard STR bulk load, routed inserts/deletes, and
query equivalence with the single R-tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import ShapeDatabase, ShapeRecord
from repro.index import DEFAULT_SHARDS, RTree, ShardedRTree

DIM = 3


@pytest.fixture
def points():
    rng = np.random.default_rng(19)
    return rng.normal(size=(300, DIM))


def build_pair(points, shards=4):
    ids = list(range(len(points)))
    single = RTree.bulk_load(points, ids, max_entries=8)
    sharded = ShardedRTree.bulk_load(points, ids, shards=shards, max_entries=8)
    return single, sharded


class TestBulkLoad:
    def test_sizes_and_invariants(self, points):
        single, sharded = build_pair(points)
        assert len(sharded) == len(single) == len(points)
        assert sharded.shard_count == 4
        sharded.check_invariants()

    def test_nearest_equivalence(self, points):
        single, sharded = build_pair(points)
        rng = np.random.default_rng(5)
        for _ in range(20):
            q = rng.normal(size=DIM)
            for k in (1, 5, 17):
                assert sharded.nearest(q, k=k) == single.nearest(q, k=k)

    def test_radius_equivalence(self, points):
        single, sharded = build_pair(points)
        rng = np.random.default_rng(6)
        for _ in range(10):
            q = rng.normal(size=DIM)
            for radius in (0.3, 1.0, 5.0):
                assert sharded.radius_search(q, radius) == single.radius_search(
                    q, radius
                )

    def test_weighted_queries_equivalent(self, points):
        single, sharded = build_pair(points)
        weights = np.array([4.0, 1.0, 0.25])
        q = np.zeros(DIM)
        assert sharded.nearest(q, k=10, weights=weights) == single.nearest(
            q, k=10, weights=weights
        )
        assert sharded.radius_search(q, 1.5, weights=weights) == single.radius_search(
            q, 1.5, weights=weights
        )

    def test_range_search_equivalence(self, points):
        from repro.index.rect import Rect

        single, sharded = build_pair(points)
        rect = Rect(np.full(DIM, -0.5), np.full(DIM, 0.5))
        assert sorted(sharded.range_search(rect)) == sorted(
            single.range_search(rect)
        )

    def test_k_larger_than_size(self, points):
        _, sharded = build_pair(points[:7])
        out = sharded.nearest(np.zeros(DIM), k=50)
        assert len(out) == 7

    def test_default_shard_count(self, points):
        sharded = ShardedRTree.bulk_load(points, list(range(len(points))))
        assert sharded.shard_count == DEFAULT_SHARDS


class TestMutation:
    def test_insert_then_query(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(80, DIM))
        single = RTree(dim=DIM, max_entries=8)
        sharded = ShardedRTree(dim=DIM, shards=3, max_entries=8)
        for i, p in enumerate(pts):
            single.insert(p, i)
            sharded.insert(p, i)
        sharded.check_invariants()
        q = np.zeros(DIM)
        assert sharded.nearest(q, k=9) == single.nearest(q, k=9)

    def test_delete_routes_to_owning_shard(self, points):
        _, sharded = build_pair(points)
        victims = [0, 37, 150, 299]
        for victim in victims:
            sharded.delete(points[victim], victim)
        sharded.check_invariants()
        assert len(sharded) == len(points) - len(victims)
        hits = {rid for rid, _ in sharded.nearest(np.zeros(DIM), k=len(points))}
        assert not hits.intersection(victims)

    def test_delete_unknown_id_is_false(self, points):
        _, sharded = build_pair(points)
        assert sharded.delete(points[0], 999999) is False
        assert len(sharded) == len(points)

    def test_node_accesses_accumulate_and_reset(self, points):
        _, sharded = build_pair(points)
        sharded.reset_stats()
        sharded.nearest(np.zeros(DIM), k=5)
        assert sharded.node_accesses > 0
        sharded.reset_stats()
        assert sharded.node_accesses == 0

    def test_empty_tree(self):
        sharded = ShardedRTree(dim=DIM, shards=2)
        assert len(sharded) == 0
        assert sharded.nearest(np.zeros(DIM), k=3) == []
        assert sharded.radius_search(np.zeros(DIM), 1.0) == []
        sharded.check_invariants()


class TestDatabaseSharding:
    def _db(self, shards):
        rng = np.random.default_rng(23)
        db = ShapeDatabase(pipeline=None, index_shards=shards)
        for _ in range(60):
            db.insert_record(
                ShapeRecord(0, "s", None, features={"f": rng.normal(size=DIM)})
            )
        return db

    def test_sharded_db_matches_unsharded(self):
        flat, sharded = self._db(0), self._db(4)
        assert isinstance(sharded.index("f"), ShardedRTree)
        assert isinstance(flat.index("f"), RTree)
        q = np.zeros(DIM)
        assert sharded.nearest("f", q, k=8) == flat.nearest("f", q, k=8)

    def test_rebuild_indexes_keeps_sharding(self):
        sharded = self._db(4)
        sharded.rebuild_indexes(bulk=True)
        index = sharded.index("f")
        assert isinstance(index, ShardedRTree)
        assert index.shard_count == 4
        flat = self._db(0)
        assert sharded.nearest("f", np.ones(DIM), k=5) == flat.nearest(
            "f", np.ones(DIM), k=5
        )

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            ShapeDatabase(pipeline=None, index_shards=-1)
