"""The packed columnar feature store: view semantics, packed-vs-legacy
scan equivalence (bitwise), persistence round-trips (mmap and not), and
salvage behavior when the packed tier is corrupted."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import (
    FeatureMatrixStore,
    ShapeDatabase,
    ShapeRecord,
    StorageError,
    load_packed_features,
)
from repro.search.engine import SearchEngine
from repro.search.similarity import weighted_distances

FEATURES = ("alpha", "beta")
DIMS = {"alpha": 4, "beta": 7}


def make_record(shape_id: int, rng, group=None) -> ShapeRecord:
    return ShapeRecord(
        shape_id=shape_id,
        name=f"s{shape_id}",
        group=group,
        features={f: rng.normal(size=DIMS[f]) for f in FEATURES},
    )


@pytest.fixture
def db():
    rng = np.random.default_rng(7)
    database = ShapeDatabase(pipeline=None)
    for i in range(40):
        database.insert_record(make_record(0, rng, group="g" if i % 3 else None))
    return database


def legacy_knn(db, feature_name, query, k):
    """The pre-packed-store scan: per-record vstack + the same sort."""
    ids = [rec.shape_id for rec in db if feature_name in rec.features]
    matrix = np.vstack([db.get(i).features[feature_name] for i in ids])
    engine = SearchEngine(db)
    weights = engine.measure(feature_name).weights
    dists = weighted_distances(np.asarray(query, dtype=np.float64), matrix, weights)
    order = np.lexsort((np.asarray(ids), dists))[:k]
    return [(ids[i], float(dists[i])) for i in order]


class TestStoreUnit:
    def test_append_and_view(self):
        store = FeatureMatrixStore()
        store.append("f", 1, [1.0, 2.0])
        store.append("f", 5, [3.0, 4.0])
        view = store.view("f")
        assert view.ids.tolist() == [1, 5]
        assert view.id_list == [1, 5]
        assert view.matrix.dtype == np.float32
        assert not view.matrix.flags.writeable
        assert len(view) == 2

    def test_view_cached_per_generation(self):
        store = FeatureMatrixStore()
        store.append("f", 1, [1.0])
        v1 = store.view("f")
        assert store.view("f") is v1
        store.append("f", 2, [2.0])
        v2 = store.view("f")
        assert v2 is not v1
        assert v2.generation > v1.generation

    def test_out_of_order_insert_keeps_sorted(self):
        store = FeatureMatrixStore()
        store.append("f", 10, [1.0])
        store.append("f", 3, [2.0])
        store.append("f", 7, [3.0])
        view = store.view("f")
        assert view.ids.tolist() == [3, 7, 10]
        assert view.matrix[:, 0].tolist() == [2.0, 3.0, 1.0]

    def test_duplicate_id_rejected(self):
        store = FeatureMatrixStore()
        store.append("f", 1, [1.0])
        with pytest.raises(ValueError, match="already has a row"):
            store.append("f", 1, [2.0])

    def test_dimension_mismatch_rejected(self):
        store = FeatureMatrixStore()
        store.append("f", 1, [1.0, 2.0])
        with pytest.raises(ValueError, match="dimension mismatch"):
            store.append("f", 2, [1.0])

    def test_extend_requires_ascending_new_ids(self):
        store = FeatureMatrixStore()
        store.extend("f", np.array([1, 2], dtype=np.int64), np.zeros((2, 3)))
        with pytest.raises(ValueError, match="exceed every stored id"):
            store.extend("f", np.array([2, 3], dtype=np.int64), np.zeros((2, 3)))
        with pytest.raises(ValueError, match="strictly ascending"):
            store.extend("f", np.array([9, 8], dtype=np.int64), np.zeros((2, 3)))

    def test_delete_drops_row_everywhere(self):
        store = FeatureMatrixStore()
        for sid in (1, 2, 3):
            store.append("f", sid, [float(sid)])
            store.append("g", sid, [float(sid), 0.0])
        store.delete(2)
        assert store.view("f").ids.tolist() == [1, 3]
        assert store.view("g").ids.tolist() == [1, 3]
        assert not store.has("f", 2)
        assert store.total_rows == 4

    def test_gather_partitions_missing(self):
        store = FeatureMatrixStore()
        for sid in (2, 4, 6):
            store.append("f", sid, [float(sid)])
        rows, carrying, missing = store.gather("f", [6, 3, 2, 7])
        assert carrying == [6, 2]
        assert missing == [3, 7]
        assert rows[:, 0].tolist() == [6.0, 2.0]

    def test_degraded_mask_tracked(self):
        store = FeatureMatrixStore()
        store.append("f", 1, [1.0], degraded=True)
        store.append("f", 2, [2.0], degraded=False)
        assert store.view("f").mask.tolist() == [True, False]

    def test_exported_views_survive_mutation(self):
        store = FeatureMatrixStore()
        store.append("f", 1, [1.0])
        store.append("f", 2, [2.0])
        view = store.view("f")
        frozen = view.matrix.copy()
        store.delete(1)
        store.append("f", 0, [9.0])  # out-of-order: rebuild
        assert np.array_equal(view.matrix, frozen)


class TestDatabaseIntegration:
    def test_feature_matrix_is_store_view(self, db):
        matrix, ids = db.feature_matrix("alpha")
        view = db.feature_view("alpha")
        assert matrix is view.matrix
        assert ids == view.id_list
        assert np.shares_memory(matrix, db.feature_view("alpha").matrix)

    def test_packed_knn_identical_to_legacy(self, db):
        engine = SearchEngine(db)
        rng = np.random.default_rng(11)
        for feature in FEATURES:
            for _ in range(5):
                q = rng.normal(size=DIMS[feature])
                got = [
                    (r.shape_id, r.distance)
                    for r in engine.search_knn(
                        q, feature, k=9, exclude_query=False, use_index=False
                    )
                ]
                assert got == legacy_knn(db, feature, q, 9)

    def test_tie_break_matches_legacy(self):
        # Identical vectors force distance ties; order must be by id.
        database = ShapeDatabase(pipeline=None)
        for _ in range(6):
            database.insert_record(
                ShapeRecord(0, "t", None, features={"f": np.array([1.0, 2.0])})
            )
        engine = SearchEngine(database)
        got = [
            (r.shape_id, r.distance)
            for r in engine.search_knn(
                np.array([1.0, 2.0]), "f", k=6, exclude_query=False, use_index=False
            )
        ]
        assert got == legacy_knn(database, "f", np.array([1.0, 2.0]), 6)
        assert [sid for sid, _ in got] == sorted(sid for sid, _ in got)

    def test_mutations_invalidate_without_explicit_call(self, db):
        engine = SearchEngine(db)
        victim = db.ids()[0]
        q = db.get(db.ids()[1]).features["alpha"]
        before = engine.search_knn(q, "alpha", k=5, exclude_query=False)
        assert before[0].distance == 0.0
        db.delete(victim)
        after = engine.search_knn(
            q, "alpha", k=5, exclude_query=False, use_index=False
        )
        assert victim not in [r.shape_id for r in after]
        assert [
            (r.shape_id, r.distance) for r in after
        ] == legacy_knn(db, "alpha", q, 5)

    def test_update_features_reflected_in_scans(self, db):
        engine = SearchEngine(db)
        target = db.ids()[3]
        new = {f: np.full(DIMS[f], 0.5) for f in FEATURES}
        db.update_features(target, new)
        got = engine.search_knn(
            np.full(DIMS["beta"], 0.5), "beta", k=1, exclude_query=False
        )
        assert got[0].shape_id == target
        assert got[0].distance == 0.0
        row = db.feature_view("beta").matrix[
            db.feature_view("beta").id_list.index(target)
        ]
        assert np.array_equal(row, np.full(DIMS["beta"], 0.5, dtype=np.float32))

    def test_rerank_uses_store_after_mutations(self, db):
        engine = SearchEngine(db)
        candidates = db.ids()[:10]
        q = np.zeros(DIMS["alpha"])
        first = engine.rerank(candidates, q, "alpha", exclude_query=False)
        db.update_features(
            candidates[0], {f: np.zeros(DIMS[f]) for f in FEATURES}
        )
        second = engine.rerank(candidates, q, "alpha", exclude_query=False)
        assert second[0].shape_id == candidates[0]
        assert second[0].distance == 0.0
        assert first[0].distance > 0.0

    def test_bulk_append_matches_incremental(self):
        rng = np.random.default_rng(3)
        mats = {f: rng.normal(size=(12, DIMS[f])).astype(np.float32) for f in FEATURES}
        bulk = ShapeDatabase(pipeline=None)
        ids = bulk.bulk_append_vectors(
            [f"n{i}" for i in range(12)], [None] * 12, mats
        )
        incremental = ShapeDatabase(pipeline=None)
        for i in range(12):
            incremental.insert_record(
                ShapeRecord(
                    0, f"n{i}", None,
                    features={f: mats[f][i] for f in FEATURES},
                )
            )
        assert ids == incremental.ids()
        for f in FEATURES:
            assert np.array_equal(
                bulk.feature_view(f).matrix, incremental.feature_view(f).matrix
            )
        # Bulk records hold views into the store, not copies.
        rec = bulk.get(ids[0])
        assert np.shares_memory(
            rec.features["alpha"], bulk.feature_view("alpha").matrix
        )


class TestPersistence:
    def test_mmap_roundtrip_bitwise(self, db, tmp_path):
        root = tmp_path / "db"
        db.save(root)
        mapped = ShapeDatabase.load(root, mmap_features=True)
        plain = ShapeDatabase.load(root, mmap_features=False)
        assert mapped.matrix_store.mmap_backed
        for f in FEATURES:
            original = db.feature_view(f)
            via_map = mapped.feature_view(f)
            via_obj = plain.feature_view(f)
            assert via_map.matrix.tobytes() == original.matrix.tobytes()
            assert via_obj.matrix.tobytes() == original.matrix.tobytes()
            assert via_map.ids.tolist() == original.ids.tolist()
            assert via_map.mask.tolist() == original.mask.tolist()
            # The mapped column serves straight from the .npy file.
            assert isinstance(
                via_map.matrix.base, np.memmap
            ) or isinstance(via_map.matrix, np.memmap)

    def test_loaded_knn_identical(self, db, tmp_path):
        root = tmp_path / "db"
        db.save(root)
        loaded = ShapeDatabase.load(root)
        q = np.linspace(-1.0, 1.0, DIMS["alpha"])
        engine = SearchEngine(loaded)
        got = [
            (r.shape_id, r.distance)
            for r in engine.search_knn(
                q, "alpha", k=7, exclude_query=False, use_index=False
            )
        ]
        assert got == legacy_knn(db, "alpha", q, 7)

    def test_record_rows_alias_store_after_load(self, db, tmp_path):
        root = tmp_path / "db"
        db.save(root)
        loaded = ShapeDatabase.load(root)
        sid = loaded.ids()[0]
        assert np.shares_memory(
            loaded.get(sid).features["alpha"], loaded.feature_view("alpha").matrix
        )

    def test_mutation_after_mmap_load_materializes(self, db, tmp_path):
        root = tmp_path / "db"
        db.save(root)
        loaded = ShapeDatabase.load(root, mmap_features=True)
        assert loaded.matrix_store.mmap_backed
        loaded.insert_record(
            ShapeRecord(
                0, "new", None,
                features={f: np.ones(DIMS[f]) for f in FEATURES},
            )
        )
        assert not loaded.matrix_store.mmap_backed
        assert loaded.feature_view("alpha").ids.tolist() == loaded.ids()

    def test_corrupt_packed_matrix_strict_raises(self, db, tmp_path):
        root = tmp_path / "db"
        db.save(root)
        target = root / "packed" / "alpha.matrix.npy"
        blob = bytearray(target.read_bytes())
        blob[-4] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="packed"):
            load_packed_features(root, strict=True)
        with pytest.raises(StorageError):
            ShapeDatabase.load(root, strict=True)

    def test_corrupt_packed_matrix_salvages_from_records(self, db, tmp_path):
        root = tmp_path / "db"
        db.save(root)
        target = root / "packed" / "alpha.matrix.npy"
        blob = bytearray(target.read_bytes())
        blob[-4] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert load_packed_features(root, strict=False) is None
        salvaged = ShapeDatabase.load(root, strict=False)
        assert len(salvaged) == len(db)
        assert not salvaged.matrix_store.mmap_backed
        for f in FEATURES:
            assert (
                salvaged.feature_view(f).matrix.tobytes()
                == db.feature_view(f).matrix.tobytes()
            )

    def test_missing_packed_file_salvages(self, db, tmp_path):
        root = tmp_path / "db"
        db.save(root)
        (root / "packed" / "beta.ids.npy").unlink()
        salvaged = ShapeDatabase.load(root, strict=False)
        assert len(salvaged) == len(db)
        assert salvaged.feature_view("beta").ids.tolist() == db.ids()
