"""Transforms: rigid motions, scaling, homogeneous matrices."""

import numpy as np
import pytest

from repro.geometry import (
    MeshError,
    box,
    compose,
    random_rotation,
    rotate,
    rotation_about_axis,
    rotation_matrix4,
    scale,
    scale_matrix,
    signed_volume,
    transform,
    translate,
    translation_matrix,
    volume,
)


class TestTranslate:
    def test_moves_vertices(self, unit_box):
        moved = translate(unit_box, [1, 2, 3])
        assert np.allclose(moved.vertices, unit_box.vertices + [1, 2, 3])

    def test_bad_offset(self, unit_box):
        with pytest.raises(MeshError):
            translate(unit_box, [1, 2])


class TestScale:
    def test_volume_scales_cubically(self, unit_box):
        assert volume(scale(unit_box, 2.0)) == pytest.approx(8.0)

    def test_rejects_nonpositive(self, unit_box):
        with pytest.raises(MeshError):
            scale(unit_box, 0.0)
        with pytest.raises(MeshError):
            scale(unit_box, -1.0)


class TestRotate:
    def test_volume_preserved(self, asym_box, rng):
        rot = random_rotation(rng)
        assert volume(rotate(asym_box, rot)) == pytest.approx(volume(asym_box))

    def test_rotation_about_axis_90deg(self):
        rot = rotation_about_axis([0, 0, 1], np.pi / 2)
        assert np.allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_rotation_about_zero_axis_raises(self):
        with pytest.raises(MeshError):
            rotation_about_axis([0, 0, 0], 1.0)

    def test_non_orthonormal_rejected(self, unit_box):
        with pytest.raises(MeshError):
            rotate(unit_box, np.eye(3) * 2.0)

    def test_improper_rotation_keeps_outward_orientation(self, unit_box):
        mirror = np.diag([-1.0, 1.0, 1.0])
        out = rotate(unit_box, mirror)
        assert signed_volume(out) > 0

    def test_random_rotation_is_special_orthogonal(self, rng):
        for _ in range(10):
            rot = random_rotation(rng)
            assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-10)
            assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_random_rotation_deterministic_with_seed(self):
        a = random_rotation(np.random.default_rng(5))
        b = random_rotation(np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestHomogeneous:
    def test_transform_translation(self, unit_box):
        out = transform(unit_box, translation_matrix([1, 0, 0]))
        assert np.allclose(out.vertices, unit_box.vertices + [1, 0, 0])

    def test_transform_scale(self, unit_box):
        out = transform(unit_box, scale_matrix(3.0))
        assert volume(out) == pytest.approx(27.0)

    def test_compose_order(self, unit_box):
        # compose applies left-to-right: scale first, then translate.
        mat = compose(scale_matrix(2.0), translation_matrix([5, 0, 0]))
        out = transform(unit_box, mat)
        lo, hi = out.bounds()
        assert np.allclose((lo + hi) / 2, [5, 0, 0])

    def test_rotation_matrix4_embedding(self, rng):
        rot = random_rotation(rng)
        mat = rotation_matrix4(rot)
        assert np.allclose(mat[:3, :3], rot)
        assert np.allclose(mat[3], [0, 0, 0, 1])

    def test_negative_determinant_flips_faces(self, unit_box):
        mirror = np.eye(4)
        mirror[0, 0] = -1.0
        out = transform(unit_box, mirror)
        assert signed_volume(out) > 0

    def test_bad_matrix_shape(self, unit_box):
        with pytest.raises(MeshError):
            transform(unit_box, np.eye(3))

    def test_scale_matrix_rejects_nonpositive(self):
        with pytest.raises(MeshError):
            scale_matrix(-2.0)
