"""Unit tests for the TriangleMesh core."""

import numpy as np
import pytest

from repro.geometry import MeshError, TriangleMesh, box


class TestConstruction:
    def test_basic(self):
        mesh = TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        assert mesh.n_vertices == 3
        assert mesh.n_faces == 1

    def test_empty(self):
        mesh = TriangleMesh([], [])
        assert mesh.n_vertices == 0
        assert mesh.n_faces == 0

    def test_bad_vertex_shape(self):
        with pytest.raises(MeshError, match="shape"):
            TriangleMesh([[0, 0], [1, 1]], [])

    def test_bad_face_shape(self):
        with pytest.raises(MeshError, match="shape"):
            TriangleMesh([[0, 0, 0]], [[0, 0]])

    def test_out_of_range_index(self):
        with pytest.raises(MeshError, match="indices"):
            TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 3]])

    def test_negative_index(self):
        with pytest.raises(MeshError, match="indices"):
            TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, -1]])

    def test_nan_vertices_rejected(self):
        with pytest.raises(MeshError, match="NaN|finite"):
            TriangleMesh([[0, 0, np.nan], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])

    def test_dtype_coercion(self):
        mesh = TriangleMesh(np.array([[0, 0, 0]], dtype=np.float32), np.zeros((0, 3)))
        assert mesh.vertices.dtype == np.float64
        assert mesh.faces.dtype == np.int64


class TestDerived:
    def test_face_normals_unit_length(self, unit_box):
        norms = np.linalg.norm(unit_box.face_normals(), axis=1)
        assert np.allclose(norms, 1.0)

    def test_face_normals_raw_magnitude_is_twice_area(self, unit_box):
        raw = unit_box.face_normals(normalized=False)
        assert np.allclose(
            0.5 * np.linalg.norm(raw, axis=1), unit_box.face_areas()
        )

    def test_degenerate_face_normal_is_zero(self):
        mesh = TriangleMesh([[0, 0, 0], [1, 0, 0], [2, 0, 0]], [[0, 1, 2]])
        assert np.allclose(mesh.face_normals(), 0.0)

    def test_face_areas_of_unit_box(self, unit_box):
        assert unit_box.face_areas().sum() == pytest.approx(6.0)

    def test_face_centroids(self):
        mesh = TriangleMesh([[0, 0, 0], [3, 0, 0], [0, 3, 0]], [[0, 1, 2]])
        assert np.allclose(mesh.face_centroids(), [[1, 1, 0]])

    def test_unique_edges_of_box(self, unit_box):
        assert len(unit_box.edges()) == 18  # 12 cube edges + 6 face diagonals

    def test_directed_edges_count(self, unit_box):
        assert len(unit_box.edges(unique=False)) == 3 * unit_box.n_faces

    def test_bounds_and_extents(self, asym_box):
        lo, hi = asym_box.bounds()
        assert np.allclose(lo, [-1, -2, -3])
        assert np.allclose(hi, [1, 2, 3])
        assert np.allclose(asym_box.extents(), [2, 4, 6])

    def test_empty_bounds_raises(self):
        with pytest.raises(MeshError):
            TriangleMesh([], []).bounds()


class TestTopology:
    def test_box_watertight(self, unit_box):
        assert unit_box.is_watertight()

    def test_open_mesh_not_watertight(self):
        mesh = TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        assert not mesh.is_watertight()

    def test_empty_not_watertight(self):
        assert not TriangleMesh([], []).is_watertight()

    def test_euler_characteristic_sphere_topology(self, unit_box, small_sphere):
        assert unit_box.euler_characteristic() == 2
        assert small_sphere.euler_characteristic() == 2

    def test_euler_characteristic_torus(self, small_torus):
        assert small_torus.euler_characteristic() == 0

    def test_components_single(self, unit_box):
        assert unit_box.n_components() == 1

    def test_components_concatenated(self, unit_box):
        two = TriangleMesh.concatenate([unit_box, box((1, 1, 1), center=(5, 0, 0))])
        assert two.n_components() == 2


class TestEditing:
    def test_copy_is_deep(self, unit_box):
        clone = unit_box.copy()
        clone.vertices[0, 0] = 99.0
        assert unit_box.vertices[0, 0] != 99.0

    def test_equality_and_hash(self, unit_box):
        clone = unit_box.copy()
        assert clone == unit_box
        assert hash(clone) == hash(unit_box)
        other = box((2, 1, 1))
        assert other != unit_box

    def test_flipped_reverses_volume_sign(self, unit_box):
        from repro.geometry import signed_volume

        assert signed_volume(unit_box.flipped()) == pytest.approx(
            -signed_volume(unit_box)
        )

    def test_remove_unused_vertices(self):
        mesh = TriangleMesh(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [9, 9, 9]], [[0, 1, 2]]
        )
        cleaned = mesh.remove_unused_vertices()
        assert cleaned.n_vertices == 3
        assert cleaned.n_faces == 1

    def test_merge_duplicate_vertices(self):
        mesh = TriangleMesh(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1e-12]],
            [[0, 1, 2], [3, 1, 2]],
        )
        merged = mesh.merge_duplicate_vertices(tol=1e-9)
        assert merged.n_vertices == 3

    def test_merge_drops_degenerate_faces(self):
        mesh = TriangleMesh(
            [[0, 0, 0], [0, 0, 1e-12], [1, 0, 0]], [[0, 1, 2]]
        )
        merged = mesh.merge_duplicate_vertices(tol=1e-9)
        assert merged.n_faces == 0

    def test_concatenate_empty_list(self):
        mesh = TriangleMesh.concatenate([])
        assert mesh.n_vertices == 0

    def test_concatenate_offsets_faces(self, unit_box):
        two = TriangleMesh.concatenate([unit_box, unit_box])
        assert two.n_vertices == 2 * unit_box.n_vertices
        assert two.faces.max() == 2 * unit_box.n_vertices - 1
