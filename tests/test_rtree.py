"""R-tree: structure invariants and equivalence to linear scan."""

import numpy as np
import pytest

from repro.index import LinearScanIndex, Rect, RTree, bounding_rect


@pytest.fixture
def pair(rng):
    """An R-tree and a linear scan loaded with the same 300 points."""
    pts = rng.normal(size=(300, 4))
    tree = RTree(4, max_entries=6)
    lin = LinearScanIndex(4)
    for i, p in enumerate(pts):
        tree.insert(p, i)
        lin.insert(p, i)
    return tree, lin, pts


class TestRect:
    def test_area_margin(self):
        r = Rect([0, 0], [2, 3])
        assert r.area() == 6.0
        assert r.margin() == 5.0

    def test_union_enlargement(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([2, 2], [3, 3])
        u = a.union(b)
        assert u.area() == 9.0
        assert a.enlargement(b) == pytest.approx(8.0)

    def test_intersects_and_contains(self):
        a = Rect([0, 0], [2, 2])
        assert a.intersects(Rect([1, 1], [3, 3]))
        assert not a.intersects(Rect([3, 3], [4, 4]))
        assert a.contains_rect(Rect([0.5, 0.5], [1.5, 1.5]))
        assert a.contains_point(np.array([1.0, 1.0]))
        assert not a.contains_point(np.array([3.0, 0.0]))

    def test_touching_rects_intersect(self):
        assert Rect([0, 0], [1, 1]).intersects(Rect([1, 1], [2, 2]))

    def test_min_dist(self):
        r = Rect([0, 0], [1, 1])
        assert r.min_dist(np.array([0.5, 0.5])) == 0.0
        assert r.min_dist(np.array([2.0, 1.0])) == pytest.approx(1.0)
        assert r.min_dist(np.array([2.0, 2.0])) == pytest.approx(np.sqrt(2))

    def test_weighted_min_dist(self):
        r = Rect([0, 0], [1, 1])
        w = np.array([4.0, 1.0])
        assert r.min_dist(np.array([2.0, 0.5]), weights=w) == pytest.approx(2.0)

    def test_from_point_degenerate(self):
        r = Rect.from_point([1, 2, 3])
        assert r.area() == 0.0
        assert r.contains_point(np.array([1.0, 2.0, 3.0]))

    def test_invalid_rect(self):
        with pytest.raises(ValueError):
            Rect([1, 0], [0, 1])

    def test_bounding_rect(self):
        r = bounding_rect([Rect([0, 0], [1, 1]), Rect([2, -1], [3, 0])])
        assert np.allclose(r.mins, [0, -1])
        assert np.allclose(r.maxs, [3, 1])
        with pytest.raises(ValueError):
            bounding_rect([])


class TestStructure:
    def test_invariants_after_inserts(self, pair):
        tree, _, _ = pair
        tree.check_invariants()
        assert len(tree) == 300

    def test_height_grows_logarithmically(self, pair):
        tree, _, _ = pair
        assert 2 <= tree.height() <= 6

    def test_invariants_after_deletes(self, pair):
        tree, _, pts = pair
        for i in range(0, 150):
            assert tree.delete(pts[i], i)
        tree.check_invariants()
        assert len(tree) == 150

    def test_delete_missing_returns_false(self, pair):
        tree, _, pts = pair
        assert not tree.delete(pts[0] + 100.0, 0)

    def test_delete_to_empty(self, rng):
        pts = rng.normal(size=(40, 2))
        tree = RTree(2, max_entries=4)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        for i, p in enumerate(pts):
            assert tree.delete(p, i)
        assert len(tree) == 0
        tree.check_invariants()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RTree(0)
        with pytest.raises(ValueError):
            RTree(2, max_entries=1)
        with pytest.raises(ValueError):
            RTree(2, max_entries=4, min_entries=3)

    def test_dimension_mismatch(self):
        tree = RTree(3)
        with pytest.raises(ValueError):
            tree.insert([1.0, 2.0], 0)

    def test_bulk_load_invariants(self, rng):
        pts = rng.normal(size=(500, 3))
        tree = RTree.bulk_load(pts, list(range(500)), max_entries=10)
        tree.check_invariants()
        assert len(tree) == 500

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load(np.zeros((0, 3)), [])
        assert len(tree) == 0

    def test_bulk_load_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            RTree.bulk_load(rng.normal(size=(5, 2)), [1, 2])


class TestQueriesMatchLinearScan:
    def test_knn(self, pair, rng):
        tree, lin, _ = pair
        for _ in range(20):
            q = rng.normal(size=4)
            a = tree.nearest(q, k=7)
            b = lin.nearest(q, k=7)
            assert [x[0] for x in a] == [x[0] for x in b]
            assert np.allclose([x[1] for x in a], [x[1] for x in b])

    def test_weighted_knn(self, pair, rng):
        tree, lin, _ = pair
        w = np.array([1.0, 5.0, 0.2, 2.0])
        for _ in range(10):
            q = rng.normal(size=4)
            a = tree.nearest(q, k=5, weights=w)
            b = lin.nearest(q, k=5, weights=w)
            assert [x[0] for x in a] == [x[0] for x in b]

    def test_radius(self, pair, rng):
        tree, lin, _ = pair
        for radius in (0.5, 1.0, 2.0):
            q = rng.normal(size=4)
            a = tree.radius_search(q, radius)
            b = lin.radius_search(q, radius)
            assert sorted(x[0] for x in a) == sorted(x[0] for x in b)

    def test_range(self, pair, rng):
        tree, lin, _ = pair
        q = rng.normal(size=4)
        rect = Rect(q - 0.8, q + 0.8)
        assert sorted(tree.range_search(rect)) == sorted(lin.range_search(rect))

    def test_knn_after_deletes(self, pair, rng):
        tree, _, pts = pair
        keep = list(range(100, 300))
        for i in range(100):
            tree.delete(pts[i], i)
        lin = LinearScanIndex(4)
        for i in keep:
            lin.insert(pts[i], i)
        q = rng.normal(size=4)
        assert [x[0] for x in tree.nearest(q, 9)] == [x[0] for x in lin.nearest(q, 9)]

    def test_bulk_load_matches_incremental(self, rng):
        pts = rng.normal(size=(200, 3))
        bulk = RTree.bulk_load(pts, list(range(200)))
        lin = LinearScanIndex(3)
        for i, p in enumerate(pts):
            lin.insert(p, i)
        q = rng.normal(size=3)
        assert [x[0] for x in bulk.nearest(q, 10)] == [
            x[0] for x in lin.nearest(q, 10)
        ]

    def test_k_larger_than_size(self, rng):
        tree = RTree(2)
        tree.insert([0.0, 0.0], 1)
        tree.insert([1.0, 1.0], 2)
        assert len(tree.nearest([0.0, 0.0], k=10)) == 2

    def test_knn_validation(self, pair):
        tree, _, _ = pair
        with pytest.raises(ValueError):
            tree.nearest([0.0] * 4, k=0)
        with pytest.raises(ValueError):
            tree.nearest([0.0, 0.0], k=1)
        with pytest.raises(ValueError):
            tree.radius_search([0.0] * 4, -1.0)


class TestStats:
    def test_node_accesses_fewer_than_scan(self, rng):
        pts = rng.normal(size=(2000, 3))
        tree = RTree.bulk_load(pts, list(range(2000)))
        lin = LinearScanIndex(3)
        for i, p in enumerate(pts):
            lin.insert(p, i)
        tree.reset_stats()
        lin.reset_stats()
        q = rng.normal(size=3)
        tree.nearest(q, 10)
        lin.nearest(q, 10)
        assert tree.node_accesses * tree.max_entries < lin.point_accesses

    def test_reset(self, pair, rng):
        tree, _, _ = pair
        tree.nearest(rng.normal(size=4), 3)
        assert tree.node_accesses > 0
        tree.reset_stats()
        assert tree.node_accesses == 0


class TestLinearScan:
    def test_delete(self, rng):
        lin = LinearScanIndex(2)
        lin.insert([1.0, 2.0], 7)
        assert lin.delete([1.0, 2.0], 7)
        assert not lin.delete([1.0, 2.0], 7)
        assert len(lin) == 0

    def test_validation(self):
        lin = LinearScanIndex(2)
        with pytest.raises(ValueError):
            lin.insert([1.0], 0)
        with pytest.raises(ValueError):
            lin.nearest([0.0, 0.0], k=0)
        with pytest.raises(ValueError):
            LinearScanIndex(0)
