"""Tests for the unified query API (:mod:`repro.search.api`).

These tests exercise only the new ``SearchRequest``/``search()`` surface
directly (the deprecated shims are called solely under
``pytest.deprecated_call``), so the suite stays green under
``python -W error::DeprecationWarning`` — the CI leg that proves the
project itself is off the legacy API.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SearchHit, SearchRequest, SearchResponse, SystemConfig, ThreeDESS
from repro.geometry.primitives import box, cylinder, tube
from repro.search.api import SEARCH_MODES, execute_search
from repro.search.engine import SearchResult

RES = 10


@pytest.fixture(scope="module")
def system():
    sys3d = ThreeDESS(SystemConfig(voxel_resolution=RES))
    sys3d.insert(box((2, 3, 4)), name="b1", group="boxes")
    sys3d.insert(box((2.1, 3.1, 3.9)), name="b2", group="boxes")
    sys3d.insert(box((5, 5, 1)), name="plate")
    sys3d.insert(cylinder(2, 6), name="rod", group="rods")
    sys3d.insert(tube(3, 2, 5), name="bushing")
    return sys3d


class TestSearchRequestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SearchRequest(query=1, mode="psychic")

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError, match="k must be"):
            SearchRequest(query=1, mode="knn", k=0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            SearchRequest(query=1, mode="threshold", threshold=1.5)

    def test_threshold_bounds_inclusive(self):
        SearchRequest(query=1, mode="threshold", threshold=0.0)
        SearchRequest(query=1, mode="threshold", threshold=1.0)

    def test_steps_normalized_to_tuples(self):
        request = SearchRequest(
            query=1,
            mode="multi_step",
            steps=[("principal_moments", 3), ("geometric_params", 2)],
        )
        assert request.steps == (
            ("principal_moments", 3),
            ("geometric_params", 2),
        )

    def test_modes_catalog(self):
        assert SEARCH_MODES == ("knn", "threshold", "multi_step", "cascade")

    def test_strategy_requires_cascade_mode(self):
        from repro.search import CascadeStrategy

        with pytest.raises(ValueError, match="cascade"):
            SearchRequest(
                query=1,
                mode="knn",
                strategy=CascadeStrategy.default("principal_moments", 5),
            )

    def test_strategy_must_be_strategy_object(self):
        with pytest.raises(ValueError, match="CascadeStrategy"):
            SearchRequest(query=1, mode="cascade", strategy=[("scan", 5)])


class TestUnifiedSearch:
    def test_knn_response_shape(self, system):
        response = system.search(SearchRequest(query=1, mode="knn", k=3))
        assert isinstance(response, SearchResponse)
        assert len(response) == 3
        assert response.shape_ids[0] == 2  # the near-duplicate box
        hit = response.hits[0]
        assert isinstance(hit, SearchHit)
        assert hit.rank == 1
        assert hit.name == "b2" and hit.group == "boxes"
        assert 0.0 <= hit.similarity <= 1.0
        assert hit.distance >= 0.0
        assert [h.rank for h in response] == [1, 2, 3]

    def test_threshold_mode(self, system):
        response = system.search(
            SearchRequest(query=1, mode="threshold", threshold=0.0)
        )
        # threshold 0 admits every other shape.
        assert len(response) == len(system) - 1

    def test_multi_step_mode_is_deprecated_shim(self, system):
        # mode="multi_step" still answers — as the equivalent cascade —
        # but warns; new code uses mode="cascade" with a strategy.
        with pytest.deprecated_call():
            response = system.search(
                SearchRequest(
                    query=1,
                    mode="multi_step",
                    steps=(("principal_moments", 4), ("geometric_params", 2)),
                )
            )
        assert len(response) == 2
        assert response.path == "cascade"
        assert [s.kind for s in response.stages] == ["scan", "rerank"]

    def test_cascade_mode_default_strategy(self, system):
        response = system.search(SearchRequest(query=1, mode="cascade", k=3))
        assert len(response) == 3
        assert response.path == "cascade"
        assert all(h.path == "cascade" for h in response.hits)
        assert all(h.stage >= 1 for h in response.hits)
        assert [s.stage for s in response.stages] == [1, 2]
        # The default strategy's exact rerank agrees with one-shot knn.
        knn = system.search(SearchRequest(query=1, mode="knn", k=3))
        assert response.shape_ids == knn.shape_ids

    def test_mesh_query(self, system):
        response = system.search(
            SearchRequest(query=box((2, 3, 4)), mode="knn", k=1)
        )
        assert response.shape_ids == [1]

    def test_index_vs_linear_provenance(self, system):
        indexed = system.search(SearchRequest(query=1, mode="knn", k=2))
        linear = system.search(
            SearchRequest(query=1, mode="knn", k=2, use_index=False)
        )
        assert indexed.path == "index"
        assert all(h.path == "index" for h in indexed.hits)
        assert linear.path == "linear"
        assert all(h.path == "linear" for h in linear.hits)
        # Both paths retrieve the same ranking.
        assert indexed.shape_ids == linear.shape_ids

    def test_degraded_provenance(self):
        sys3d = ThreeDESS(SystemConfig(voxel_resolution=RES))
        sys3d.insert(box((2, 3, 4)), name="clean")
        sys3d.insert(box((2.1, 3.1, 3.9)), name="tainted")
        # Mark record 2 degraded the way faulted ingestion does.
        record = sys3d.database.get(2)
        record.metadata["degraded"] = "1"
        response = sys3d.search(SearchRequest(query=1, mode="knn", k=1))
        assert response.hits[0].shape_id == 2
        assert response.hits[0].degraded

    def test_to_results_downgrade(self, system):
        response = system.search(SearchRequest(query=1, mode="knn", k=2))
        results = response.to_results()
        assert all(isinstance(r, SearchResult) for r in results)
        assert [r.shape_id for r in results] == response.shape_ids
        assert [r.rank for r in results] == [1, 2]

    def test_execute_search_on_engine(self, system):
        response = execute_search(
            system.engine, SearchRequest(query=1, mode="knn", k=2)
        )
        assert response.shape_ids == system.search(
            SearchRequest(query=1, mode="knn", k=2)
        ).shape_ids


class TestLegacyFacadeRemoved:
    """The PR-5 deprecation cycle ended: the shim methods are gone.

    ``system.search(SearchRequest(...))`` is the only facade entry
    point; docs/API.md keeps the migration table.
    """

    @pytest.mark.parametrize(
        "name", ["query_by_example", "query_by_threshold", "multi_step"]
    )
    def test_method_gone(self, system, name):
        with pytest.raises(AttributeError):
            getattr(system, name)

    def test_deprecated_shim_helper_gone(self):
        import repro.search.api as api

        assert not hasattr(api, "deprecated_shim")
        assert "deprecated_shim" not in api.__all__

    def test_search_does_not_warn(self, system, recwarn):
        system.search(SearchRequest(query=1, mode="knn", k=3))
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
