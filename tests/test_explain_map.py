"""Search explanation API and the mAP experiment driver."""

import numpy as np
import pytest

from repro.db import ShapeDatabase
from repro.features import FeaturePipeline
from repro.geometry import box, cylinder
from repro.search import SearchEngine


@pytest.fixture
def engine():
    db = ShapeDatabase(FeaturePipeline(voxel_resolution=12))
    db.insert_mesh(box((2, 3, 4)), group="boxes")
    db.insert_mesh(box((2.1, 3.1, 3.9)), group="boxes")
    db.insert_mesh(cylinder(1, 4, 16), group="cyls")
    return SearchEngine(db)


class TestExplain:
    def test_fractions_sum_to_one(self, engine):
        rows = engine.explain(1, 2, "geometric_params")
        assert len(rows) == 5
        assert sum(f for _, _, f in rows) == pytest.approx(1.0)

    def test_sorted_by_contribution(self, engine):
        rows = engine.explain(1, 3, "geometric_params")
        terms = [t for _, t, _ in rows]
        assert terms == sorted(terms, reverse=True)

    def test_terms_reconstruct_distance(self, engine):
        rows = engine.explain(1, 3, "principal_moments")
        measure = engine.measure("principal_moments")
        q = engine.database.get(1).feature("principal_moments")
        x = engine.database.get(3).feature("principal_moments")
        assert np.sqrt(sum(t for _, t, _ in rows)) == pytest.approx(
            measure.distance(q, x)
        )

    def test_identical_shapes_zero_total(self, engine):
        rows = engine.explain(1, 1, "principal_moments")
        assert all(t == pytest.approx(0.0) for _, t, _ in rows)


class TestMeanAP:
    def test_on_eval_corpus(self, eval_db, eval_engine):
        from repro.evaluation import exp_mean_average_precision

        result = exp_mean_average_precision(
            eval_db, eval_engine, features=["principal_moments", "eigenvalues"]
        )
        assert result.n_queries == 86
        assert (
            result.mean_ap["principal_moments"] > result.mean_ap["eigenvalues"]
        )
        assert "EXT-MAP" in result.format()

    def test_ordering_matches_values(self, eval_db, eval_engine):
        from repro.evaluation import exp_mean_average_precision

        result = exp_mean_average_precision(
            eval_db, eval_engine, features=["principal_moments", "eigenvalues"]
        )
        order = result.ordering()
        assert result.mean_ap[order[0]] >= result.mean_ap[order[-1]]
