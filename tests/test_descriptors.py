"""Extended descriptors: sampling, distributions, histograms, Fourier."""

import numpy as np
import pytest

from repro.descriptors import (
    A3,
    COMBINED,
    D1,
    D2,
    D3,
    SECTOR,
    SHELL,
    distribution_samples,
    fourier_descriptor,
    sample_surface_points,
    shape_distribution,
    shape_histogram,
)
from repro.geometry import (
    MeshError,
    TriangleMesh,
    box,
    random_rotation,
    rotate,
    scale,
    translate,
    uv_sphere,
)
from repro.voxel import voxelize


class TestSampling:
    def test_count_and_shape(self, unit_box, rng):
        pts = sample_surface_points(unit_box, 500, rng=rng)
        assert pts.shape == (500, 3)

    def test_points_lie_on_surface(self, unit_box, rng):
        pts = sample_surface_points(unit_box, 300, rng=rng)
        # For the unit cube, every surface point has some |coord| = 0.5.
        on_face = (np.abs(np.abs(pts) - 0.5) < 1e-9).any(axis=1)
        assert on_face.all()

    def test_area_weighting(self, rng):
        # A slab: the two big faces carry almost all the area.
        slab = box((10, 10, 0.1))
        pts = sample_surface_points(slab, 2000, rng=rng)
        on_big_faces = np.abs(np.abs(pts[:, 2]) - 0.05) < 1e-9
        assert on_big_faces.mean() > 0.9

    def test_deterministic_with_seed(self, unit_box):
        a = sample_surface_points(unit_box, 100, rng=np.random.default_rng(1))
        b = sample_surface_points(unit_box, 100, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_validation(self, unit_box):
        with pytest.raises(ValueError):
            sample_surface_points(unit_box, 0)
        with pytest.raises(MeshError):
            sample_surface_points(TriangleMesh([], []), 10)


class TestShapeDistribution:
    @pytest.mark.parametrize("kind", [D1, D2, D3, A3])
    def test_histogram_is_pmf(self, l_bracket, kind):
        hist = shape_distribution(l_bracket, kind=kind)
        assert hist.sum() == pytest.approx(1.0)
        assert (hist >= 0).all()

    @pytest.mark.parametrize("kind", [D1, D2, A3])
    def test_invariance_under_rigid_and_scale(self, l_bracket, kind, rng):
        base = shape_distribution(l_bracket, kind=kind)
        moved = translate(
            scale(rotate(l_bracket, random_rotation(rng)), 2.5), [7, -3, 4]
        )
        got = shape_distribution(moved, kind=kind)
        assert np.abs(got - base).sum() < 0.05

    def test_distinguishes_sphere_from_rod(self, rng):
        sphere = uv_sphere(1.0, 12, 24)
        rod = box((10, 0.5, 0.5))
        d_sphere = shape_distribution(sphere, kind=D2)
        d_rod = shape_distribution(rod, kind=D2)
        assert np.abs(d_sphere - d_rod).sum() > 0.3

    def test_matches_same_family(self, rng):
        a = shape_distribution(box((4, 3, 1)), kind=D2)
        b = shape_distribution(box((4.2, 2.9, 1.05)), kind=D2)
        c = shape_distribution(uv_sphere(1.5, 12, 24), kind=D2)
        assert np.abs(a - b).sum() < np.abs(a - c).sum()

    def test_unknown_kind(self, unit_box):
        with pytest.raises(ValueError):
            shape_distribution(unit_box, kind="d9")
        with pytest.raises(ValueError):
            shape_distribution(unit_box, bins=1)

    def test_raw_samples_ranges(self, unit_box):
        angles = distribution_samples(unit_box, A3, n_samples=300)
        assert ((angles >= 0) & (angles <= np.pi)).all()
        dists = distribution_samples(unit_box, D2, n_samples=300)
        assert (dists >= 0).all()
        assert dists.max() <= np.sqrt(3) + 1e-9  # cube diameter


class TestShapeHistogram:
    @pytest.mark.parametrize("model", [SHELL, SECTOR, COMBINED])
    def test_histogram_is_pmf(self, l_bracket, model):
        hist = shape_histogram(l_bracket, model=model)
        assert hist.sum() == pytest.approx(1.0)

    def test_dimensions(self, unit_box):
        assert shape_histogram(unit_box, model=SHELL, n_shells=8).shape == (8,)
        assert shape_histogram(unit_box, model=SECTOR).shape == (6,)
        assert shape_histogram(unit_box, model=COMBINED, n_shells=4).shape == (24,)

    def test_shell_rotation_invariance(self, l_bracket, rng):
        base = shape_histogram(l_bracket, model=SHELL)
        got = shape_histogram(rotate(l_bracket, random_rotation(rng)), model=SHELL)
        assert np.abs(got - base).sum() < 0.05

    def test_sphere_concentrates_outer_shells(self):
        hist = shape_histogram(uv_sphere(1.0, 16, 32), model=SHELL, n_shells=8)
        assert hist[-1] > 0.5  # all surface samples at max radius

    def test_unknown_model(self, unit_box):
        with pytest.raises(ValueError):
            shape_histogram(unit_box, model="cone")
        with pytest.raises(ValueError):
            shape_histogram(unit_box, n_shells=0)


class TestFourier:
    def test_dimension_and_dc(self, unit_box):
        grid = voxelize(unit_box, resolution=16)
        vec = fourier_descriptor(grid, cutoff=1)
        assert vec.shape == (27,)
        assert vec[0] == pytest.approx(1.0)  # DC-normalized
        assert (vec >= 0).all()

    def test_occupancy_scale_cancels(self, unit_box):
        grid = voxelize(unit_box, resolution=16)
        doubled = voxelize(scale(unit_box, 2.0), resolution=16)
        a = fourier_descriptor(grid, cutoff=1)
        b = fourier_descriptor(doubled, cutoff=1)
        assert np.allclose(a, b, atol=0.05)

    def test_distinguishes_shapes(self, unit_box):
        a = fourier_descriptor(voxelize(unit_box, resolution=16))
        b = fourier_descriptor(voxelize(box((4, 1, 1)), resolution=16))
        assert not np.allclose(a, b, atol=1e-3)

    def test_validation(self, unit_box):
        grid = voxelize(unit_box, resolution=16)
        with pytest.raises(ValueError):
            fourier_descriptor(grid, cutoff=0)
        from repro.voxel import VoxelGrid

        tiny = VoxelGrid(np.ones((2, 2, 2), dtype=bool))
        with pytest.raises(ValueError):
            fourier_descriptor(tiny, cutoff=3)


class TestExtractorIntegration:
    def test_extended_descriptors_via_pipeline(self, l_bracket):
        from repro.features import FeaturePipeline

        names = [
            "d2_distribution",
            "shell_histogram",
            "sector_histogram",
            "combined_histogram",
            "fourier3d",
        ]
        pipe = FeaturePipeline(feature_names=names, voxel_resolution=16)
        fv = pipe.extract(l_bracket)
        assert set(fv) == set(names)
        for vec in fv.values():
            assert np.isfinite(vec).all()

    def test_registered_in_registry(self):
        from repro.features import available_features

        for name in ("d1_distribution", "a3_distribution", "fourier3d"):
            assert name in available_features()

    def test_extended_database_loads(self, rng):
        from repro.datasets import ALL_DESCRIPTOR_FEATURES, load_or_build_extended_database

        db = load_or_build_extended_database()
        assert set(db.feature_names()) == set(ALL_DESCRIPTOR_FEATURES)
        assert len(db) == 113
