"""Tests for the multi-stage retrieval cascade (:mod:`repro.search.cascade`).

Covers the int8 quantization sidecar, strategy/stage validation and wire
forms, the exact-mode bitwise-equivalence contract against the one-shot
linear path, quantized recall, degraded records flowing through every
stage, the optional graph stage, per-stage budgets, and persistence /
salvage of the quantized tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SearchRequest, SystemConfig, ThreeDESS
from repro.datasets.generator import build_synthetic_database
from repro.db import ShapeDatabase, StorageError
from repro.db.quantized import (
    QUANT_LEVELS,
    approx_weighted_sq_distances,
    dequantize,
    quantize_matrix,
)
from repro.db.storage import load_quantized_features
from repro.geometry.primitives import box, cylinder, tube
from repro.robust import Deadline, DeadlineExceededError
from repro.search import (
    CASCADE_STAGE_KINDS,
    CascadeStage,
    CascadeStrategy,
    SearchEngine,
    run_cascade,
)
from repro.search.multistep import MultiStepPlan, multi_step_search

FEATURE = "principal_moments"


@pytest.fixture(scope="module")
def synth_db():
    return build_synthetic_database(400, seed=7, n_groups=8)


@pytest.fixture(scope="module")
def synth_engine(synth_db):
    return SearchEngine(synth_db)


@pytest.fixture(scope="module")
def mesh_system():
    sys3d = ThreeDESS(SystemConfig(voxel_resolution=10))
    sys3d.insert(box((2, 3, 4)), name="b1", group="boxes")
    sys3d.insert(box((2.1, 3.1, 3.9)), name="b2", group="boxes")
    sys3d.insert(box((5, 5, 1)), name="plate")
    sys3d.insert(cylinder(2, 6), name="rod", group="rods")
    sys3d.insert(tube(3, 2, 5), name="bushing")
    return sys3d


# ----------------------------------------------------------------------
# int8 quantization sidecar
# ----------------------------------------------------------------------
class TestQuantization:
    def test_round_trip_within_half_step(self, rng):
        matrix = rng.normal(size=(50, 6)) * np.array([1, 10, 0.1, 100, 1, 1])
        codes, scale, offset = quantize_matrix(matrix)
        assert codes.dtype == np.int8 and codes.shape == matrix.shape
        recon = dequantize(codes, scale, offset)
        assert np.all(np.abs(recon - matrix) <= scale / 2 + 1e-9)

    def test_constant_dimension_is_exact(self):
        matrix = np.full((10, 3), 4.25)
        codes, scale, offset = quantize_matrix(matrix)
        assert np.all(scale == 1.0)  # span floor: constant -> unit scale
        assert np.allclose(dequantize(codes, scale, offset), matrix)

    def test_empty_matrix(self):
        codes, scale, offset = quantize_matrix(np.empty((0, 4)))
        assert codes.shape == (0, 4) and codes.dtype == np.int8
        assert len(scale) == len(offset) == 4

    def test_levels_span_the_range(self, rng):
        matrix = rng.uniform(-5, 5, size=(200, 2))
        codes, _, _ = quantize_matrix(matrix)
        assert codes.min() == -128
        assert codes.max() == QUANT_LEVELS - 1 - 128

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2D"):
            quantize_matrix(np.zeros(5))

    def test_approx_distances_match_dequantized_exactly(self, synth_db):
        column = synth_db.quantized_view(FEATURE)
        query = synth_db.get(1).feature(FEATURE)
        weights = np.linspace(0.5, 2.0, column.dim)
        approx = approx_weighted_sq_distances(column, query, weights)
        recon = dequantize(column.codes, column.scale, column.offset)
        exact = ((recon - query) ** 2 * weights).sum(axis=1)
        assert approx.shape == (len(column),)
        assert np.allclose(approx, exact, rtol=1e-4, atol=1e-4)

    def test_query_dim_mismatch_rejected(self, synth_db):
        column = synth_db.quantized_view(FEATURE)
        with pytest.raises(ValueError, match="dim"):
            approx_weighted_sq_distances(
                column, np.zeros(column.dim + 1), np.ones(column.dim + 1)
            )

    def test_sidecar_is_one_byte_per_dimension(self, synth_db):
        column = synth_db.quantized_view(FEATURE)
        view = synth_db.feature_view(FEATURE)
        assert column.nbytes == view.matrix.shape[0] * view.matrix.shape[1]
        assert np.array_equal(column.ids, view.ids)

    def test_view_cached_until_mutation(self):
        db = build_synthetic_database(20, seed=3, n_groups=2)
        first = db.quantized_view(FEATURE)
        assert db.quantized_view(FEATURE) is first
        db.delete(1)
        second = db.quantized_view(FEATURE)
        assert second is not first
        assert 1 not in second.ids


# ----------------------------------------------------------------------
# Stage and strategy validation + wire forms
# ----------------------------------------------------------------------
class TestStageValidation:
    def test_kind_catalog(self):
        assert CASCADE_STAGE_KINDS == ("scan", "rerank", "graph")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown stage kind"):
            CascadeStage(kind="teleport", keep=5)

    @pytest.mark.parametrize("keep", [0, -1, True, 2.0])
    def test_bad_keep(self, keep):
        with pytest.raises(ValueError, match="keep"):
            CascadeStage(kind="scan", keep=keep, feature_name=FEATURE)

    @pytest.mark.parametrize("kind", ["scan", "rerank"])
    def test_feature_required(self, kind):
        with pytest.raises(ValueError, match="feature_name"):
            CascadeStage(kind=kind, keep=5)

    def test_quantized_only_on_scan(self):
        with pytest.raises(ValueError, match="quantized"):
            CascadeStage(kind="rerank", keep=5, feature_name=FEATURE,
                         quantized=True)

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_bad_budget(self, budget):
        with pytest.raises(ValueError, match="budget_ms"):
            CascadeStage(kind="graph", keep=5, budget_ms=budget)

    def test_wire_round_trip(self):
        stage = CascadeStage(kind="scan", keep=40, feature_name=FEATURE,
                             quantized=True, budget_ms=25.0)
        assert CascadeStage.from_wire(stage.to_wire()) == stage

    def test_wire_omits_defaults(self):
        assert CascadeStage(kind="graph", keep=5).to_wire() == {
            "kind": "graph", "keep": 5,
        }

    def test_wire_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown stage fields"):
            CascadeStage.from_wire({"kind": "graph", "keep": 5, "turbo": 1})

    def test_wire_missing_required(self):
        with pytest.raises(ValueError, match="'kind' and 'keep'"):
            CascadeStage.from_wire({"kind": "graph"})

    def test_wire_bool_keep_rejected(self):
        with pytest.raises(ValueError, match="keep"):
            CascadeStage.from_wire({"kind": "graph", "keep": True})


class TestStrategyValidation:
    def test_needs_a_stage(self):
        with pytest.raises(ValueError, match="at least one stage"):
            CascadeStrategy(stages=())

    def test_first_must_be_scan(self):
        with pytest.raises(ValueError, match="first cascade stage"):
            CascadeStrategy(stages=(
                CascadeStage(kind="rerank", keep=5, feature_name=FEATURE),
            ))

    def test_only_one_scan(self):
        with pytest.raises(ValueError, match="only the first"):
            CascadeStrategy(stages=(
                CascadeStage(kind="scan", keep=9, feature_name=FEATURE),
                CascadeStage(kind="scan", keep=5, feature_name=FEATURE),
            ))

    def test_graph_must_be_last(self):
        with pytest.raises(ValueError, match="last stage"):
            CascadeStrategy(stages=(
                CascadeStage(kind="scan", keep=9, feature_name=FEATURE),
                CascadeStage(kind="graph", keep=5),
                CascadeStage(kind="rerank", keep=3, feature_name=FEATURE),
            ))

    def test_quantized_scan_needs_rerank(self):
        # Pruning scores may never be presented.
        with pytest.raises(ValueError, match="pruning scores"):
            CascadeStrategy(stages=(
                CascadeStage(kind="scan", keep=9, feature_name=FEATURE,
                             quantized=True),
            ))

    def test_keeps_non_increasing(self):
        with pytest.raises(ValueError, match="non-increasing"):
            CascadeStrategy(stages=(
                CascadeStage(kind="scan", keep=5, feature_name=FEATURE),
                CascadeStage(kind="rerank", keep=9, feature_name=FEATURE),
            ))

    def test_default_pool_floor(self):
        strategy = CascadeStrategy.default(FEATURE, 3)
        assert [s.kind for s in strategy.stages] == ["scan", "rerank"]
        assert strategy.stages[0].keep == 50  # max(4k, 50)
        assert strategy.stages[0].quantized
        assert strategy.final_keep == 3
        assert CascadeStrategy.default(FEATURE, 20).stages[0].keep == 80

    def test_exact_constructor(self):
        strategy = CascadeStrategy.exact(FEATURE, 5, pool=12)
        assert not strategy.stages[0].quantized
        assert strategy.stages[0].keep == 12

    def test_paper_strategy(self):
        strategy = CascadeStrategy.paper()
        assert strategy.stages[0].feature_name == "moment_invariants"
        assert strategy.stages[0].keep == 30
        assert strategy.stages[1].feature_name == "geometric_params"
        assert strategy.final_keep == 10

    def test_from_steps(self):
        strategy = CascadeStrategy.from_steps(
            [(FEATURE, 8), ("geometric_params", 4)]
        )
        assert [s.kind for s in strategy.stages] == ["scan", "rerank"]
        assert not strategy.stages[0].quantized
        with pytest.raises(ValueError, match="at least one"):
            CascadeStrategy.from_steps([])

    def test_wire_round_trip(self):
        strategy = CascadeStrategy.default(FEATURE, 5)
        assert CascadeStrategy.from_wire(strategy.to_wire()) == strategy

    def test_wire_non_list_rejected(self):
        with pytest.raises(ValueError, match="list of stages"):
            CascadeStrategy.from_wire({"kind": "scan"})


# ----------------------------------------------------------------------
# Correctness: exact mode is bitwise the linear path
# ----------------------------------------------------------------------
class TestExactEquivalence:
    @pytest.mark.parametrize("k", [1, 5, 10, 25])
    def test_bitwise_identical_to_linear_knn(self, synth_engine, k):
        for pool in (k, 4 * k, 200):
            strategy = CascadeStrategy.exact(FEATURE, k, pool=pool)
            outcome = run_cascade(synth_engine, 17, strategy)
            linear = synth_engine.search_knn(
                17, FEATURE, k=k, use_index=False
            )
            assert [r.shape_id for r in outcome.results] == [
                r.shape_id for r in linear
            ]
            assert [r.distance for r in outcome.results] == [
                r.distance for r in linear
            ]  # bitwise: stage 2 recomputes the same floats
            assert [r.rank for r in outcome.results] == [
                r.rank for r in linear
            ]

    def test_vector_query_equivalence(self, synth_engine, synth_db):
        query = synth_db.get(5).feature(FEATURE) * 1.01
        outcome = run_cascade(
            synth_engine, query, CascadeStrategy.exact(FEATURE, 10, pool=60)
        )
        linear = synth_engine.search_knn(query, FEATURE, k=10, use_index=False)
        assert [(r.shape_id, r.distance) for r in outcome.results] == [
            (r.shape_id, r.distance) for r in linear
        ]

    def test_query_excluded_by_default(self, synth_engine):
        outcome = run_cascade(
            synth_engine, 17, CascadeStrategy.exact(FEATURE, 10)
        )
        assert 17 not in [r.shape_id for r in outcome.results]
        kept = run_cascade(
            synth_engine, 17, CascadeStrategy.exact(FEATURE, 10),
            exclude_query=False,
        )
        assert kept.results[0].shape_id == 17
        assert kept.results[0].distance == 0.0

    def test_stage_reports(self, synth_engine, synth_db):
        outcome = run_cascade(
            synth_engine, 17, CascadeStrategy.exact(FEATURE, 5, pool=20)
        )
        scan, rerank = outcome.reports
        assert (scan.stage, scan.kind, scan.path) == (1, "scan", "exact")
        assert scan.candidates_in == len(synth_db)
        assert scan.candidates_out == 20
        assert (rerank.stage, rerank.kind, rerank.path) == (2, "rerank", "rerank")
        assert rerank.candidates_in == 20
        assert rerank.candidates_out == 5
        assert all(r.elapsed_ms >= 0.0 for r in outcome.reports)
        assert all(outcome.scored_stage[r.shape_id] == 2
                   for r in outcome.results)

    def test_strategy_type_checked(self, synth_engine):
        with pytest.raises(TypeError, match="CascadeStrategy"):
            run_cascade(synth_engine, 1, [("scan", 5)])


# ----------------------------------------------------------------------
# Quantized stage 1: recall and provenance
# ----------------------------------------------------------------------
class TestQuantizedCascade:
    def test_recall_at_10_on_default_pool(self, synth_engine):
        hits = 0
        queries = range(1, 21)
        for sid in queries:
            truth = {
                r.shape_id
                for r in synth_engine.search_knn(
                    sid, FEATURE, k=10, use_index=False
                )
            }
            outcome = run_cascade(
                synth_engine, sid, CascadeStrategy.default(FEATURE, 10)
            )
            hits += len(truth & {r.shape_id for r in outcome.results})
        recall = hits / (10 * len(queries))
        assert recall >= 0.95

    def test_reported_distances_are_full_precision(self, synth_engine):
        """Quantization can cost pool membership, never distort a
        distance: every presented distance equals the linear path's for
        the same shape id."""
        outcome = run_cascade(
            synth_engine, 3, CascadeStrategy.default(FEATURE, 10)
        )
        linear = {
            r.shape_id: r.distance
            for r in synth_engine.search_knn(
                3, FEATURE, k=50, use_index=False
            )
        }
        for result in outcome.results:
            assert result.distance == linear[result.shape_id]

    def test_quantized_provenance(self, synth_engine, synth_db):
        outcome = run_cascade(
            synth_engine, 3, CascadeStrategy.default(FEATURE, 5)
        )
        scan = outcome.reports[0]
        assert scan.path == "quantized"
        assert scan.candidates_in == len(synth_db)
        assert scan.candidates_out == 50
        # Pruning scores are never presented: every result was scored
        # by the rerank stage.
        assert all(outcome.scored_stage[r.shape_id] == 2
                   for r in outcome.results)


# ----------------------------------------------------------------------
# Degraded records flow through every stage
# ----------------------------------------------------------------------
@pytest.fixture
def degraded_system():
    """Five shapes; shape 2 degraded and missing geometric_params."""
    sys3d = ThreeDESS(SystemConfig(voxel_resolution=10))
    sys3d.insert(box((2, 3, 4)), name="b1", group="boxes")
    sys3d.insert(box((2.1, 3.1, 3.9)), name="b2", group="boxes")
    sys3d.insert(box((5, 5, 1)), name="plate")
    sys3d.insert(cylinder(2, 6), name="rod")
    sys3d.insert(tube(3, 2, 5), name="bushing")
    record = sys3d.database.get(2)
    partial = {
        fname: vec
        for fname, vec in record.features.items()
        if fname != "geometric_params"
    }
    sys3d.database.update_features(
        2, partial, failures={"geometric_params": "extract.degraded_test"}
    )
    assert sys3d.database.get(2).is_degraded()
    return sys3d


class TestDegradedThroughStages:
    def test_degraded_survivor_counted_in_every_stage(self, degraded_system):
        engine = degraded_system.engine
        outcome = run_cascade(
            engine, 1,
            CascadeStrategy.default(FEATURE, 3, pool=4, quantized=True),
        )
        # The near-duplicate degraded box survives both stages and both
        # reports count it.
        assert outcome.results[0].shape_id == 2
        assert all(report.degraded >= 1 for report in outcome.reports)

    def test_quantized_scan_skips_missing_feature_rows(self, degraded_system):
        """Stage 1 over the feature shape 2 lacks never crashes — the
        record has no row in the column, quantized or packed alike."""
        engine = degraded_system.engine
        for quantized in (True, False):
            outcome = run_cascade(
                engine, 1,
                CascadeStrategy.default(
                    "geometric_params", 3, pool=4, quantized=quantized
                ),
            )
            ids = [r.shape_id for r in outcome.results]
            assert 2 not in ids
            assert len(ids) == 3
            assert outcome.reports[0].candidates_in == 4  # 5 shapes - 1 row

    def test_degraded_flag_reaches_api_hits(self, degraded_system):
        response = degraded_system.search(
            SearchRequest(
                query=1, mode="cascade", k=2,
                strategy=CascadeStrategy.default(FEATURE, 2, pool=4),
            )
        )
        top = response.hits[0]
        assert top.shape_id == 2 and top.degraded
        assert response.stages[-1].degraded >= 1

    def test_degraded_record_through_graph_stage(self, degraded_system):
        engine = degraded_system.engine
        strategy = CascadeStrategy(stages=(
            CascadeStage(kind="scan", keep=4, feature_name=FEATURE),
            CascadeStage(kind="rerank", keep=3, feature_name=FEATURE),
            CascadeStage(kind="graph", keep=3),
        ))
        outcome = run_cascade(engine, 1, strategy)
        assert outcome.reports[-1].path == "graph"
        assert 2 in [r.shape_id for r in outcome.results]
        assert outcome.reports[-1].degraded >= 1


# ----------------------------------------------------------------------
# Graph stage
# ----------------------------------------------------------------------
class TestGraphStage:
    def _strategy(self, keep=3):
        return CascadeStrategy(stages=(
            CascadeStage(kind="scan", keep=4, feature_name=FEATURE),
            CascadeStage(kind="rerank", keep=3, feature_name=FEATURE),
            CascadeStage(kind="graph", keep=keep),
        ))

    def test_graph_rescored_results(self, mesh_system):
        engine = mesh_system.engine
        outcome = run_cascade(engine, 1, self._strategy())
        report = outcome.reports[-1]
        assert (report.stage, report.kind, report.path) == (3, "graph", "graph")
        assert report.candidates_in == 3
        for result in outcome.results:
            assert result.similarity == 1.0 / (1.0 + result.distance)
            assert outcome.scored_stage[result.shape_id] == 3
        # GED ascending, ranks renumbered.
        dists = [r.distance for r in outcome.results]
        assert dists == sorted(dists)
        assert [r.rank for r in outcome.results] == [1, 2, 3]

    def test_vector_query_skips_graph(self, mesh_system):
        engine = mesh_system.engine
        query = mesh_system.database.get(1).feature(FEATURE)
        outcome = run_cascade(engine, query, self._strategy())
        report = outcome.reports[-1]
        assert report.path == "skipped"
        assert report.note == "no query geometry"
        # Candidates pass through with their stage-2 scores and order.
        assert all(outcome.scored_stage[r.shape_id] == 2
                   for r in outcome.results)

    def test_meshless_candidate_ranks_after_scored(self, mesh_system):
        engine = mesh_system.engine
        baseline = run_cascade(engine, 1, self._strategy())
        survivor_ids = [r.shape_id for r in baseline.results]
        stripped = survivor_ids[0]  # best graph match loses its mesh
        record = mesh_system.database.get(stripped)
        saved, record.mesh = record.mesh, None
        try:
            # Graph cache keys on the store generation, which mesh
            # stripping does not bump — use a fresh engine.
            outcome = run_cascade(
                SearchEngine(mesh_system.database), 1, self._strategy()
            )
        finally:
            record.mesh = saved
        results = outcome.results
        assert results[-1].shape_id == stripped  # after every scored one
        assert outcome.scored_stage[stripped] == 2  # kept its rerank score
        assert [r.rank for r in results] == [1, 2, 3]

    def test_budget_exhaustion_degrades_not_raises(self, mesh_system):
        engine = mesh_system.engine
        strategy = CascadeStrategy(stages=(
            CascadeStage(kind="scan", keep=4, feature_name=FEATURE),
            CascadeStage(kind="rerank", keep=3, feature_name=FEATURE),
            CascadeStage(kind="graph", keep=3, budget_ms=1e-6),
        ))
        rerank_only = run_cascade(engine, 1, self._strategy())
        outcome = run_cascade(engine, 1, strategy)
        report = outcome.reports[-1]
        assert report.path == "graph"
        assert report.note == "budget exhausted"
        # Unscored candidates keep the stage-2 order.
        assert [r.shape_id for r in outcome.results] == [
            r.shape_id for r in rerank_only.results
        ] or all(outcome.scored_stage[r.shape_id] == 2
                 for r in outcome.results[-report.candidates_in:])

    def test_no_pipeline_skips_graph(self, synth_engine):
        strategy = CascadeStrategy(stages=(
            CascadeStage(kind="scan", keep=5, feature_name=FEATURE),
            CascadeStage(kind="graph", keep=5),
        ))
        outcome = run_cascade(synth_engine, 1, strategy)
        # Synthetic records carry no meshes: no query geometry either.
        assert outcome.reports[-1].path == "skipped"
        assert len(outcome.results) == 5


# ----------------------------------------------------------------------
# Budgets and deadlines
# ----------------------------------------------------------------------
class TestBudgets:
    def test_scan_budget_raises(self, synth_engine):
        strategy = CascadeStrategy(stages=(
            CascadeStage(kind="scan", keep=10, feature_name=FEATURE,
                         budget_ms=1e-6),
        ))
        with pytest.raises(DeadlineExceededError):
            run_cascade(synth_engine, 1, strategy)

    def test_rerank_budget_raises(self, synth_engine):
        strategy = CascadeStrategy(stages=(
            CascadeStage(kind="scan", keep=20, feature_name=FEATURE),
            CascadeStage(kind="rerank", keep=5, feature_name=FEATURE,
                         budget_ms=1e-6),
        ))
        with pytest.raises(DeadlineExceededError):
            run_cascade(synth_engine, 1, strategy)

    def test_outer_deadline_respected(self, synth_engine):
        expired = Deadline(expires_at=0.0)  # the epoch of the monotonic clock
        with pytest.raises(DeadlineExceededError):
            run_cascade(
                synth_engine, 1, CascadeStrategy.exact(FEATURE, 5),
                deadline=expired,
            )

    def test_generous_budgets_run_clean(self, synth_engine):
        strategy = CascadeStrategy(stages=(
            CascadeStage(kind="scan", keep=20, feature_name=FEATURE,
                         quantized=True, budget_ms=60_000.0),
            CascadeStage(kind="rerank", keep=5, feature_name=FEATURE,
                         budget_ms=60_000.0),
        ))
        outcome = run_cascade(synth_engine, 1, strategy)
        assert len(outcome.results) == 5


# ----------------------------------------------------------------------
# Legacy multi-step equivalence
# ----------------------------------------------------------------------
class TestMultiStepEquivalence:
    def test_from_steps_matches_multi_step_search(self, synth_engine):
        steps = [("moment_invariants", 30), ("geometric_params", 10)]
        outcome = run_cascade(
            synth_engine, 9, CascadeStrategy.from_steps(steps)
        )
        legacy = multi_step_search(
            synth_engine, 9, MultiStepPlan(steps=steps), use_index=False
        )
        assert [(r.shape_id, r.distance) for r in outcome.results] == [
            (r.shape_id, r.distance) for r in legacy
        ]


# ----------------------------------------------------------------------
# Quantized sidecar persistence and salvage
# ----------------------------------------------------------------------
class TestSidecarPersistence:
    def _saved(self, tmp_path):
        db = build_synthetic_database(30, seed=11, n_groups=4)
        root = tmp_path / "db"
        db.save(root)
        return db, root

    def test_sidecar_written_and_loadable(self, tmp_path):
        db, root = self._saved(tmp_path)
        sidecars = load_quantized_features(root)
        assert sidecars is not None and FEATURE in sidecars
        side = sidecars[FEATURE]
        assert side.codes.dtype == np.int8
        fresh = db.quantized_view(FEATURE)
        assert np.array_equal(side.codes, fresh.codes)
        assert np.allclose(side.scale, fresh.scale)
        assert np.allclose(side.offset, fresh.offset)

    def test_reload_serves_quantized_scan(self, tmp_path, synth_engine):
        _, root = self._saved(tmp_path)
        db = ShapeDatabase.load(root)
        engine = SearchEngine(db)
        outcome = run_cascade(
            engine, 1, CascadeStrategy.default(FEATURE, 5, pool=10)
        )
        exact = run_cascade(
            engine, 1, CascadeStrategy.exact(FEATURE, 5, pool=10)
        )
        assert len(outcome.results) == 5
        assert {r.shape_id for r in outcome.results} == {
            r.shape_id for r in exact.results
        }

    def test_corrupt_sidecar_salvaged_not_fatal(self, tmp_path):
        db, root = self._saved(tmp_path)
        codes_path = root / "quantized" / f"{FEATURE}.codes.npy"
        blob = bytearray(codes_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        codes_path.write_bytes(bytes(blob))

        # Strict load (integrity tooling) refuses loudly ...
        with pytest.raises(StorageError, match="quantized feature tier"):
            load_quantized_features(root, strict=True)
        # ... the serving default discards the whole tier ...
        assert load_quantized_features(root) is None
        # ... and the database load rebuilds the view from the packed
        # column, bit-for-bit what a fresh quantization produces.
        loaded = ShapeDatabase.load(root)
        rebuilt = loaded.quantized_view(FEATURE)
        assert np.array_equal(rebuilt.codes, db.quantized_view(FEATURE).codes)

    def test_missing_sidecar_tier_rebuilds_lazily(self, tmp_path):
        import shutil

        _, root = self._saved(tmp_path)
        shutil.rmtree(root / "quantized")
        loaded = ShapeDatabase.load(root)
        view = loaded.quantized_view(FEATURE)
        assert len(view) == len(loaded)
