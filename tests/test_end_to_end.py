"""End-to-end walk of the paper's Fig. 2 query-processing flow.

One test class drives the whole system the way a user would: build a
library, submit a query shape that is NOT in the database, search under
every feature vector, refine with multi-step and feedback, browse, render
a result, persist, and reload — asserting consistency at each step.
"""

import numpy as np
import pytest

from repro import SystemConfig, ThreeDESS
from repro.datasets.families import FAMILIES
from repro.geometry import volume
from repro.search import CombinedSimilarity, combined_search
from repro.search.api import SearchRequest
from repro.viewer import render_mesh


@pytest.fixture(scope="module")
def library():
    """A 30-shape library from six families, five members each."""
    rng = np.random.default_rng(77)
    system = ThreeDESS(SystemConfig(voxel_resolution=16))
    families = ["l_bracket", "stepped_shaft", "washer", "flange", "block", "tee_pipe"]
    for family in families:
        for k in range(5):
            system.insert(FAMILIES[family](rng), name=f"{family}_{k}", group=family)
    return system


@pytest.fixture(scope="module")
def query_mesh():
    """A fresh l_bracket never inserted into the library."""
    return FAMILIES["l_bracket"](np.random.default_rng(555))


class TestQueryFlow:
    def test_library_populated(self, library):
        assert len(library) == 30
        assert len(library.database.classification_map()) == 6

    @pytest.mark.parametrize(
        "feature",
        ["moment_invariants", "geometric_params", "principal_moments", "eigenvalues"],
    )
    def test_every_feature_vector_searchable(self, library, query_mesh, feature):
        hits = library.search(
            SearchRequest(query=query_mesh, mode="knn", feature_name=feature, k=5)
        ).hits
        assert len(hits) == 5
        assert all(0.0 <= h.similarity <= 1.0 for h in hits)

    def test_new_mesh_finds_its_family(self, library, query_mesh):
        hits = library.search(
            SearchRequest(
                query=query_mesh,
                mode="knn",
                feature_name="principal_moments",
                k=5,
            )
        ).hits
        bracket_hits = sum(1 for h in hits if h.group == "l_bracket")
        assert bracket_hits >= 3

    def test_multistep_refinement(self, library, query_mesh):
        hits = library.search(
            SearchRequest(
                query=query_mesh,
                mode="multi_step",
                steps=(("moment_invariants", 15), ("geometric_params", 5)),
            )
        ).hits
        assert len(hits) == 5
        bracket_hits = sum(1 for h in hits if h.group == "l_bracket")
        assert bracket_hits >= 3

    def test_combined_search_on_library(self, library, query_mesh):
        combo = CombinedSimilarity.uniform(
            ["principal_moments", "moment_invariants", "geometric_params"]
        )
        hits = combined_search(library.engine, query_mesh, combo, k=5)
        assert sum(1 for h in hits if h.group == "l_bracket") >= 3

    def test_threshold_flow(self, library, query_mesh):
        strict = library.search(
            SearchRequest(query=query_mesh, mode="threshold", threshold=0.999)
        ).hits
        loose = library.search(
            SearchRequest(query=query_mesh, mode="threshold", threshold=0.5)
        ).hits
        assert len(strict) <= len(loose)

    def test_feedback_round(self, library, query_mesh):
        session = library.feedback_session(
            query_mesh, feature_name="geometric_params", k=8
        )
        first = session.search()
        relevant = [h.shape_id for h in first if h.group == "l_bracket"]
        others = [h.shape_id for h in first if h.group != "l_bracket"]
        if relevant:
            session.feedback(relevant, others)
            second = session.search()
            hits_after = sum(1 for h in second if h.group == "l_bracket")
            assert hits_after >= len(relevant) - 1

    def test_browse_then_drill(self, library):
        root = library.browse_hierarchy("principal_moments")
        assert sorted(root.member_ids) == library.database.ids()
        if root.children:
            child = max(root.children, key=lambda n: n.size)
            assert set(child.member_ids) <= set(root.member_ids)

    def test_render_top_result(self, library, query_mesh):
        hit = library.search(
            SearchRequest(query=query_mesh, mode="knn", k=1)
        ).hits[0]
        mesh = library.database.get(hit.shape_id).mesh
        image = render_mesh(mesh, size=48)
        assert image.shape == (48, 48, 3)

    def test_explain_top_result(self, library, query_mesh):
        hit = library.search(
            SearchRequest(
                query=query_mesh,
                mode="knn",
                feature_name="geometric_params",
                k=1,
            )
        ).hits[0]
        rows = library.engine.explain(query_mesh, hit.shape_id, "geometric_params")
        assert sum(f for _, _, f in rows) == pytest.approx(1.0)

    def test_persist_reload_consistency(self, library, query_mesh, tmp_path):
        library.save(tmp_path / "lib")
        back = ThreeDESS.load(
            tmp_path / "lib", config=SystemConfig(voxel_resolution=16)
        )
        request = SearchRequest(query=query_mesh, mode="knn", k=5)
        a = [h.shape_id for h in library.search(request).hits]
        b = [h.shape_id for h in back.search(request).hits]
        assert a == b
        # Geometry survives: volumes agree.
        for shape_id in a[:2]:
            assert volume(back.database.get(shape_id).mesh) == pytest.approx(
                volume(library.database.get(shape_id).mesh)
            )
