"""The query-service daemon: wire protocol, admission control,
deadlines, snapshot reload, the jobs watcher, and the stdlib client
(including the ``three-dess serve`` / ``query --server`` CLI surface).

Servers bind port 0 (the OS picks a free port) so tests can run in
parallel workers without colliding.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import SystemConfig
from repro.core.system import ThreeDESS
from repro.geometry import box, cylinder, save_mesh
from repro.robust.deadline import Deadline, DeadlineExceededError
from repro.service import (
    JobWatcher,
    ProtocolError,
    QueryServer,
    QueueFullError,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
    SnapshotManager,
    decode_request,
)
from repro.service.server import AdmissionGate

from .faults import good_mesh

RES = 10


def small_config() -> SystemConfig:
    return SystemConfig(voxel_resolution=RES)


@pytest.fixture(scope="module")
def db_dir(tmp_path_factory):
    """A four-shape database saved to disk, served by every test."""
    root = tmp_path_factory.mktemp("service") / "db"
    system = ThreeDESS(small_config())
    system.insert(box((2, 3, 4)), name="b1", group="boxes")
    system.insert(box((2.1, 3.1, 3.9)), name="b2", group="boxes")
    system.insert(box((1.9, 2.8, 4.2)), name="b3", group="boxes")
    system.insert(cylinder(1, 4, 16), name="c1", group="cyls")
    system.save(root)
    return root


@pytest.fixture
def server(db_dir):
    srv = QueryServer(SnapshotManager(db_dir, config=small_config()), port=0)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


# ----------------------------------------------------------------------
# Deadline primitive
# ----------------------------------------------------------------------
class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(60.0)
        assert 0.0 < d.remaining() <= 60.0
        assert not d.expired()
        d.check("anywhere")  # no raise

    def test_expired_check_raises_with_context(self):
        d = Deadline.after(1e-9)
        while not d.expired():
            pass
        with pytest.raises(DeadlineExceededError) as err:
            d.check("index_probe")
        assert err.value.code == "service.deadline_exceeded"
        assert err.value.context["where"] == "index_probe"

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)

    def test_is_a_timeout(self):
        assert issubclass(DeadlineExceededError, TimeoutError)


# ----------------------------------------------------------------------
# Admission gate (unit)
# ----------------------------------------------------------------------
class TestAdmissionGate:
    def test_zero_queue_sheds_while_slot_held(self):
        gate = AdmissionGate(max_concurrent=1, queue_limit=0)
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with gate.admit():
                entered.set()
                release.wait(10.0)

        worker = threading.Thread(target=hold, daemon=True)
        worker.start()
        assert entered.wait(10.0)
        # The one slot is busy and nobody may wait: immediate refusal.
        with pytest.raises(QueueFullError) as err:
            with gate.admit(retry_after=2.5):
                pass
        assert err.value.retry_after == 2.5
        release.set()
        worker.join(timeout=10.0)
        assert gate.active == 0 and gate.waiting == 0

    def test_expired_waiter_raises_deadline(self):
        gate = AdmissionGate(max_concurrent=1, queue_limit=4)
        release = threading.Event()
        entered = threading.Event()

        def hold():
            with gate.admit():
                entered.set()
                release.wait(10.0)

        worker = threading.Thread(target=hold, daemon=True)
        worker.start()
        assert entered.wait(10.0)
        with pytest.raises(DeadlineExceededError):
            with gate.admit(deadline=Deadline.after(0.05)):
                pass
        release.set()
        worker.join(timeout=10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(0, 1)
        with pytest.raises(ValueError):
            AdmissionGate(1, -1)

    def test_waiting_and_active_read_under_lock(self):
        """Regression (RPL100): the ``waiting``/``active`` properties
        must take the gate lock — they used to read the counters
        lock-free, racing the condition-variable updates in admit()."""
        gate = AdmissionGate(max_concurrent=1, queue_limit=1)

        class RecordingLock:
            def __init__(self, inner):
                self._inner = inner
                self.entries = 0

            def __enter__(self):
                self.entries += 1
                return self._inner.__enter__()

            def __exit__(self, *exc_info):
                return self._inner.__exit__(*exc_info)

        gate._lock = RecordingLock(gate._lock)
        before = gate._lock.entries
        assert gate.waiting == 0
        assert gate.active == 0
        assert gate._lock.entries == before + 2


# ----------------------------------------------------------------------
# Wire protocol (unit)
# ----------------------------------------------------------------------
class TestProtocol:
    def test_decode_minimal(self):
        request, budget, wire_v = decode_request({"shape_id": 1})
        assert request.query == 1 and request.mode == "knn"
        assert budget is None
        assert wire_v == 1

    def test_deadline_ms_converted_to_seconds(self):
        _, budget, _ = decode_request({"shape_id": 1, "deadline_ms": 1500})
        assert budget == pytest.approx(1.5)

    def test_decode_v2_with_strategy(self):
        request, _, wire_v = decode_request(
            {
                "shape_id": 1,
                "v": 2,
                "mode": "cascade",
                "strategy": [
                    {"kind": "scan", "keep": 20, "feature_name": "principal_moments", "quantized": True},
                    {"kind": "rerank", "keep": 5, "feature_name": "principal_moments"},
                ],
            }
        )
        assert wire_v == 2
        assert request.mode == "cascade"
        assert request.strategy is not None
        assert [s.kind for s in request.strategy.stages] == ["scan", "rerank"]

    def test_strategy_requires_v2(self):
        with pytest.raises(ProtocolError):
            decode_request(
                {
                    "shape_id": 1,
                    "mode": "cascade",
                    "strategy": [
                        {"kind": "scan", "keep": 5, "feature_name": "principal_moments"}
                    ],
                }
            )

    def test_unsupported_version_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request({"shape_id": 1, "v": 3})

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # no query
            {"shape_id": 1, "vector": [1.0]},  # two queries
            {"shape_id": "one"},  # wrong type
            {"shape_id": 1, "bogus": True},  # unknown field
            {"shape_id": 1, "deadline_ms": -5},  # non-positive budget
            {"vector": []},  # empty vector
            {"mesh": {"vertices": []}},  # unbuildable mesh
            [1, 2, 3],  # not an object
        ],
    )
    def test_bad_payloads_rejected(self, payload):
        with pytest.raises(ProtocolError):
            decode_request(payload)


# ----------------------------------------------------------------------
# End-to-end HTTP round trips
# ----------------------------------------------------------------------
class TestSearchEndpoint:
    def test_knn_by_shape_id(self, client):
        response = client.search(shape_id=1, k=2)
        assert response["ok"] and response["generation"] == 1
        hits = client.hits(response)
        assert [h["rank"] for h in hits] == [1, 2]
        assert {h["shape_id"] for h in hits} == {2, 3}
        assert all(0.0 <= h["similarity"] <= 1.0 for h in hits)
        assert response["degraded"]["degraded_records"] == 0

    def test_mesh_round_trip(self, client):
        # A TriangleMesh is JSON-encoded client-side, rebuilt and
        # feature-extracted server-side.
        hits = client.hits(client.search(mesh=box((2, 3, 4)), k=1))
        assert hits[0]["name"] == "b1"

    def test_threshold_mode(self, client):
        response = client.search(shape_id=1, mode="threshold", threshold=0.0)
        assert len(client.hits(response)) == 3

    def test_multi_step_mode(self, client):
        response = client.search(
            shape_id=1,
            mode="multi_step",
            steps=[("principal_moments", 3), ("geometric_params", 2)],
        )
        assert response["mode"] == "multi_step"
        assert len(client.hits(response)) == 2

    def test_v1_request_gets_v1_response(self, server):
        # A raw request without "v" must be answered byte-compatible
        # with the pre-versioning wire: no "v", no staged provenance.
        request = urllib.request.Request(
            f"{server.url}/search",
            data=json.dumps({"shape_id": 1, "k": 2}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30.0) as resp:
            body = json.loads(resp.read().decode("utf-8"))
        assert "v" not in body and "stages" not in body
        assert all("stage" not in h for h in body["hits"])

    def test_v2_cascade_over_the_wire(self, client):
        response = client.search(
            shape_id=1,
            mode="cascade",
            k=2,
            strategy=[
                {
                    "kind": "scan",
                    "keep": 3,
                    "feature_name": "principal_moments",
                    "quantized": True,
                },
                {"kind": "rerank", "keep": 2, "feature_name": "principal_moments"},
            ],
        )
        assert response["v"] == 2 and response["mode"] == "cascade"
        assert [s["stage"] for s in response["stages"]] == [1, 2]
        assert response["stages"][0]["path"] == "quantized"
        assert response["stages"][0]["candidates_in"] == 4
        hits = client.hits(response)
        assert len(hits) == 2
        assert all(h["stage"] == 2 and h["path"] == "cascade" for h in hits)

    def test_client_negotiates_down_to_v1(self, client, monkeypatch):
        # Simulate a pre-versioning server: reject any body carrying
        # "v" with the old unknown-field 400, else pass through.
        real_call = client._call

        def legacy_call(method, path, body=None, **kwargs):
            if body is not None and "v" in body:
                raise ServiceError(
                    "unknown request field(s): v; expected a subset of ...",
                    status=400,
                    code="service.bad_request",
                )
            return real_call(method, path, body, **kwargs)

        monkeypatch.setattr(client, "_call", legacy_call)
        response = client.search(shape_id=1, k=1)
        assert response["ok"] and "v" not in response
        assert client._wire_v == 1
        # The downgrade sticks: the next call goes straight to v1.
        response = client.search(shape_id=1, k=1)
        assert response["ok"]

    def test_strategy_not_expressible_on_v1_server(self, client, monkeypatch):
        def legacy_call(method, path, body=None, **kwargs):
            assert body is not None and ("v" in body or "strategy" in body)
            raise ServiceError(
                "unknown request field(s): strategy, v; expected a subset of ...",
                status=400,
                code="service.bad_request",
            )

        monkeypatch.setattr(client, "_call", legacy_call)
        with pytest.raises(ServiceError) as err:
            client.search(shape_id=1, mode="cascade", strategy=[
                {"kind": "scan", "keep": 2, "feature_name": "principal_moments"},
            ])
        assert err.value.status == 400

    def test_unknown_shape_id_is_client_error(self, client):
        with pytest.raises(ServiceError) as err:
            client.search(shape_id=999)
        assert err.value.status == 400
        assert err.value.code == "service.unknown_reference"

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/search",
            data=b"{definitely not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400
        body = json.loads(err.value.read().decode("utf-8"))
        assert body["error"]["code"] == "service.bad_request"

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._call("GET", "/nope")
        assert err.value.status == 404
        assert err.value.code == "service.not_found"

    def test_deadline_expiry_is_504(self, client):
        with pytest.raises(ServiceError) as err:
            client.search(shape_id=1, deadline_ms=1e-4)
        assert err.value.status == 504
        assert err.value.code == "service.deadline_exceeded"

    def test_health_and_metrics(self, client):
        health = client.health()
        assert health["ok"] and health["shapes"] == 4
        assert health["admission"]["max_concurrent"] == 8
        client.search(shape_id=1, k=1)
        snapshot = client.metrics()
        assert snapshot["counters"]["service.requests"] >= 1
        assert snapshot["histograms"]["service.request.search"]["count"] >= 1


# ----------------------------------------------------------------------
# Concurrency, backpressure, reload-under-load
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_sixteen_concurrent_clients_zero_failures(self, server):
        results: list = []
        errors: list = []
        barrier = threading.Barrier(16)

        def worker():
            client = ServiceClient(server.url, timeout=60.0)
            barrier.wait(timeout=30.0)
            try:
                for _ in range(3):
                    response = client.search(shape_id=1, k=2)
                    results.append(response["ok"])
            except Exception as exc:  # collected and asserted below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert errors == []
        assert len(results) == 48 and all(results)

    def test_queue_full_is_503_with_retry_after(self, db_dir):
        srv = QueryServer(
            SnapshotManager(db_dir, config=small_config()),
            port=0,
            max_concurrent=1,
            queue_limit=0,
            retry_after_s=2.0,
        )
        # Make the one executing request hold its slot until released.
        snapshot = srv.snapshots.current
        original = snapshot.system.search
        started = threading.Event()
        release = threading.Event()

        def slow_search(request, deadline=None):
            started.set()
            release.wait(30.0)
            return original(request, deadline=deadline)

        snapshot.system.search = slow_search
        srv.start()
        try:
            blocker_error: list = []

            def blocker():
                try:
                    ServiceClient(srv.url, timeout=60.0).search(shape_id=1)
                except Exception as exc:
                    blocker_error.append(exc)

            thread = threading.Thread(target=blocker)
            thread.start()
            assert started.wait(30.0)
            with pytest.raises(ServiceError) as err:
                ServiceClient(srv.url, timeout=60.0).search(shape_id=2)
            assert err.value.status == 503
            assert err.value.code == "service.queue_full"
            assert err.value.context["retry_after"] == "2"
            release.set()
            thread.join(timeout=60.0)
            assert blocker_error == []
        finally:
            release.set()
            srv.stop()

    def test_reload_under_load_drops_nothing(self, db_dir):
        srv = QueryServer(SnapshotManager(db_dir, config=small_config()), port=0)
        srv.start()
        try:
            stop = threading.Event()
            generations: list = []
            errors: list = []

            def querier():
                client = ServiceClient(srv.url, timeout=60.0)
                while not stop.is_set():
                    try:
                        response = client.search(shape_id=1, k=1)
                        generations.append(response["generation"])
                    except Exception as exc:
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=querier) for _ in range(4)]
            for t in threads:
                t.start()
            admin = ServiceClient(srv.url, timeout=60.0)
            for _ in range(3):
                admin.reload()
            stop.set()
            for t in threads:
                t.join(timeout=60.0)
            assert errors == []
            assert generations, "queriers never completed a request"
            # Every response came from a well-defined generation, and the
            # final reload is visible to a fresh request.
            assert set(generations) <= {1, 2, 3, 4}
            assert admin.search(shape_id=1, k=1)["generation"] == 4
        finally:
            srv.stop()


# ----------------------------------------------------------------------
# Snapshot manager
# ----------------------------------------------------------------------
class TestSnapshotManager:
    def test_generation_increments_and_old_snapshot_survives(self, db_dir):
        manager = SnapshotManager(db_dir, config=small_config())
        first = manager.current
        assert first.generation == 1
        second = manager.reload()
        assert second.generation == 2
        assert manager.current is second
        # The old snapshot still answers queries for whoever holds it.
        from repro.search.api import SearchRequest

        assert first.system.search(SearchRequest(query=1, mode="knn", k=1)).hits

    def test_failed_reload_keeps_serving(self, db_dir, tmp_path):
        manager = SnapshotManager(db_dir, config=small_config())
        before = manager.current
        manager.directory = str(tmp_path / "missing")
        with pytest.raises(Exception):
            manager.reload()
        assert manager.current is before


# ----------------------------------------------------------------------
# Jobs watcher
# ----------------------------------------------------------------------
class TestJobWatcher:
    def test_idle_cycle_executes_nothing(self, db_dir, tmp_path):
        watcher = JobWatcher(db_dir, tmp_path / "q.jsonl", config=small_config())
        assert watcher.run_cycle() == 0
        assert watcher.jobs_executed == 0

    def test_heals_degraded_records_and_reloads(self, monkeypatch, tmp_path):
        import repro.features.base as base
        from repro.robust.errors import SkeletonizationError

        def broken_thin(voxels):
            raise SkeletonizationError("injected", code="skeleton.no_convergence")

        system = ThreeDESS(small_config())
        with monkeypatch.context() as patch:
            patch.setattr(base, "thin", broken_thin)
            result = system.insert_batch([good_mesh(), good_mesh(1.5)])
        assert result.degraded_ids == [1, 2]
        db = tmp_path / "db"
        system.save(db)

        manager = SnapshotManager(db, config=small_config())
        assert manager.current.degraded_records == 2

        watcher = JobWatcher(
            db,
            tmp_path / "q.jsonl",
            snapshots=manager,
            max_cycles=1,
            config=small_config(),
        )
        executed = watcher.run_cycle()
        # Two re-extract heals plus the warm-cache job priming the
        # reloaded serving snapshot.
        assert executed == 3
        # Healing saved the db and reloaded the serving snapshot.
        assert manager.current.generation == 2
        assert manager.current.degraded_records == 0

    def test_bounded_loop_stops_itself(self, db_dir, tmp_path):
        watcher = JobWatcher(
            db_dir,
            tmp_path / "q.jsonl",
            interval=0.05,
            max_cycles=2,
            config=small_config(),
        )
        watcher.start()
        watcher.join(timeout=60.0)
        assert watcher.cycles_run == 2

    def test_interval_validated(self, db_dir, tmp_path):
        with pytest.raises(ValueError):
            JobWatcher(db_dir, tmp_path / "q.jsonl", interval=0.0)


# ----------------------------------------------------------------------
# Client transport errors
# ----------------------------------------------------------------------
class TestClient:
    def test_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceUnavailableError) as err:
            client.health()
        assert err.value.code == "service.unavailable"
        assert err.value.status == 0

    def test_bare_host_port_promoted(self):
        assert ServiceClient("localhost:8707").base_url == "http://localhost:8707"


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeCli:
    def test_query_against_running_server(self, server, db_dir, tmp_path, capsys):
        mesh_path = tmp_path / "query.off"
        save_mesh(box((2, 3, 4)), mesh_path)
        code = main(
            ["query", str(db_dir), str(mesh_path), "--server", server.url, "-k", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "generation 1" in out
        assert "b1" in out

    def test_query_unreachable_server_exits_9(self, db_dir, tmp_path, capsys):
        mesh_path = tmp_path / "query.off"
        save_mesh(box((2, 3, 4)), mesh_path)
        code = main(
            ["query", str(db_dir), str(mesh_path), "--server", "127.0.0.1:9"]
        )
        err = capsys.readouterr().err
        assert code == 9
        assert "service.unavailable" in err

    def test_jobs_watch_single_cycle(self, db_dir, capsys):
        code = main(["jobs", "watch", str(db_dir), "--max-cycles", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "watched 1 cycle(s)" in out


# ----------------------------------------------------------------------
# Keep-alive client transport
# ----------------------------------------------------------------------
class TestKeepAlive:
    def test_connection_reused_across_calls(self, server):
        client = ServiceClient(server.url)
        client.health()
        conn = client._conn
        assert conn is not None
        client.search(shape_id=1, k=2)
        assert client._conn is conn
        client.close()
        assert client._conn is None

    def test_keep_alive_off_never_persists(self, server):
        client = ServiceClient(server.url, keep_alive=False)
        client.health()
        client.search(shape_id=1, k=2)
        assert client._conn is None

    def test_stale_socket_retried_once(self, server):
        client = ServiceClient(server.url)
        client.health()
        # Simulate the server closing an idle kept-alive socket.
        client._conn.sock.close()
        out = client.health()
        assert out["ok"] is True
        assert client._conn is not None
        client.close()

    def test_fresh_connection_failure_is_unavailable(self):
        client = ServiceClient("127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceUnavailableError):
            client.health()
        assert client._conn is None

    def test_error_responses_keep_connection(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as err:
            client.search(shape_id=999999, k=2)
        assert err.value.status == 400
        conn = client._conn
        assert conn is not None
        assert client.health()["ok"] is True
        assert client._conn is conn
        client.close()

    def test_context_manager_closes(self, server):
        with ServiceClient(server.url) as client:
            client.health()
            assert client._conn is not None
        assert client._conn is None

    def test_healthz_reports_store(self, client):
        out = client.health()
        assert out["store"]["columns"] >= 1
        assert out["store"]["rows"] > 0
        assert out["store"]["bytes"] > 0
        assert isinstance(out["store"]["zero_copy"], bool)
