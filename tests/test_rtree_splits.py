"""R-tree split strategies: linear, quadratic, R*."""

import numpy as np
import pytest

from repro.index import LinearScanIndex, RTree
from repro.index.rtree import LINEAR_SPLIT, QUADRATIC_SPLIT, RSTAR_SPLIT, SPLIT_STRATEGIES


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(17)
    centers = rng.uniform(-10, 10, size=(12, 3))
    assign = rng.integers(12, size=600)
    return centers[assign] + rng.normal(scale=0.4, size=(600, 3))


@pytest.fixture(scope="module")
def oracle(points):
    lin = LinearScanIndex(3)
    for i, p in enumerate(points):
        lin.insert(p, i)
    return lin


class TestCorrectness:
    @pytest.mark.parametrize("strategy", SPLIT_STRATEGIES)
    def test_knn_matches_oracle(self, points, oracle, strategy):
        tree = RTree(3, max_entries=8, split=strategy)
        for i, p in enumerate(points):
            tree.insert(p, i)
        tree.check_invariants()
        rng = np.random.default_rng(3)
        for _ in range(10):
            q = rng.uniform(-10, 10, 3)
            a = [d for _, d in tree.nearest(q, 8)]
            b = [d for _, d in oracle.nearest(q, 8)]
            assert np.allclose(a, b)

    @pytest.mark.parametrize("strategy", SPLIT_STRATEGIES)
    def test_deletes_keep_invariants(self, points, strategy):
        tree = RTree(3, max_entries=6, split=strategy)
        for i, p in enumerate(points[:200]):
            tree.insert(p, i)
        for i in range(0, 100):
            assert tree.delete(points[i], i)
        tree.check_invariants()
        assert len(tree) == 100

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            RTree(3, split="zorder")


class TestQuality:
    def test_rstar_not_worse_than_linear(self, points):
        accesses = {}
        rng = np.random.default_rng(9)
        queries = rng.uniform(-10, 10, size=(30, 3))
        for strategy in SPLIT_STRATEGIES:
            tree = RTree(3, max_entries=8, split=strategy)
            for i, p in enumerate(points):
                tree.insert(p, i)
            tree.reset_stats()
            for q in queries:
                tree.nearest(q, 10)
            accesses[strategy] = tree.node_accesses
        assert accesses[RSTAR_SPLIT] <= accesses[LINEAR_SPLIT]
        # Quadratic sits between the cheap and careful strategies on
        # clustered data (allow slack for tie configurations).
        assert accesses[QUADRATIC_SPLIT] <= accesses[LINEAR_SPLIT] * 1.2
