"""Agglomerative clustering and cluster-quality measures."""

import numpy as np
import pytest

from repro.cluster import (
    AVERAGE,
    COMPLETE,
    LINKAGES,
    SINGLE,
    agglomerative,
    agglomerative_labels,
    cluster_sizes,
    purity,
    silhouette_score,
)


@pytest.fixture
def blobs(rng):
    centers = np.array([[0, 0], [8, 0], [4, 8]], dtype=float)
    data = np.vstack([rng.normal(loc=c, scale=0.4, size=(10, 2)) for c in centers])
    truth = ["a"] * 10 + ["b"] * 10 + ["c"] * 10
    return data, truth


class TestDendrogram:
    def test_merge_count(self, blobs):
        data, _ = blobs
        dendro = agglomerative(data)
        assert dendro.n_points == 30
        assert len(dendro.merges) == 29

    def test_single_point(self):
        dendro = agglomerative(np.zeros((1, 3)))
        assert dendro.merges == []
        assert dendro.cut(1).tolist() == [0]

    @pytest.mark.parametrize("linkage", LINKAGES)
    def test_cut_sizes(self, blobs, linkage):
        data, _ = blobs
        dendro = agglomerative(data, linkage=linkage)
        for k in (1, 3, 7, 30):
            labels = dendro.cut(k)
            assert len(np.unique(labels)) == k

    def test_cut_validation(self, blobs):
        data, _ = blobs
        dendro = agglomerative(data)
        with pytest.raises(ValueError):
            dendro.cut(0)
        with pytest.raises(ValueError):
            dendro.cut(31)

    def test_average_linkage_merge_distances_grow_for_blobs(self, blobs):
        data, _ = blobs
        dendro = agglomerative(data, linkage=AVERAGE)
        dists = [m.distance for m in dendro.merges]
        # The final (cross-blob) merges dwarf the early in-blob merges.
        assert max(dists[:20]) < min(dists[-2:])

    @pytest.mark.parametrize("linkage", LINKAGES)
    def test_blob_separation(self, blobs, linkage):
        data, truth = blobs
        labels = agglomerative_labels(data, 3, linkage=linkage)
        assert purity(labels, truth) == 1.0

    def test_unknown_linkage(self, blobs):
        data, _ = blobs
        with pytest.raises(ValueError):
            agglomerative(data, linkage="ward")

    def test_empty_data(self):
        with pytest.raises(ValueError):
            agglomerative(np.zeros((0, 2)))


class TestQualityMeasures:
    def test_silhouette_high_for_separated(self, blobs):
        data, _ = blobs
        labels = agglomerative_labels(data, 3)
        assert silhouette_score(data, labels) > 0.7

    def test_silhouette_low_for_random_labels(self, blobs, rng):
        data, _ = blobs
        random_labels = rng.integers(3, size=len(data))
        good = silhouette_score(data, agglomerative_labels(data, 3))
        bad = silhouette_score(data, random_labels)
        assert bad < good

    def test_silhouette_validation(self, blobs):
        data, _ = blobs
        with pytest.raises(ValueError):
            silhouette_score(data, np.zeros(len(data)))
        with pytest.raises(ValueError):
            silhouette_score(data, np.zeros(len(data) - 1))

    def test_purity_ignores_none(self):
        labels = np.array([0, 0, 1, 1])
        truth = ["a", "a", "b", None]
        assert purity(labels, truth) == 1.0

    def test_purity_mixed_cluster(self):
        labels = np.array([0, 0, 0, 0])
        truth = ["a", "a", "b", "b"]
        assert purity(labels, truth) == 0.5

    def test_purity_validation(self):
        with pytest.raises(ValueError):
            purity(np.array([0]), [None])

    def test_cluster_sizes(self):
        assert cluster_sizes(np.array([2, 2, 0, 1, 1, 1])) == {0: 1, 1: 3, 2: 2}


class TestOnCorpus:
    def test_agglomerative_groups_corpus_families(self, eval_db):
        matrix, ids = eval_db.feature_matrix("principal_moments")
        truth = [eval_db.group_of(i) for i in ids]
        labels = agglomerative_labels(matrix, 26, linkage=AVERAGE)
        # Clustering the real descriptor space is noisy; require clearly
        # better-than-chance purity.
        assert purity(labels, truth) > 0.5
