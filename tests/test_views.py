"""View-based descriptor: silhouettes, Hu moments, query-by-drawing."""

import numpy as np
import pytest

from repro.descriptors import (
    PRINCIPAL_VIEWS,
    hu_moments,
    match_drawing,
    silhouette_mask,
    view_based_descriptor,
    view_signatures,
)
from repro.geometry import MeshError, TriangleMesh, box, cylinder, extrude_polygon


@pytest.fixture
def bracket():
    return extrude_polygon(
        [[0, 0], [6, 0], [6, 1], [1, 1], [1, 4], [0, 4]], 1.2, name="bracket"
    )


class TestSilhouette:
    def test_mask_shape_and_fill(self, unit_box):
        mask = silhouette_mask(unit_box, (0, 1), size=64)
        assert mask.shape == (64, 64)
        assert 0.3 < mask.mean() < 1.0  # square fills most of the frame

    def test_views_differ_for_anisotropic_shape(self, bracket):
        xy = silhouette_mask(bracket, (0, 1), size=64)
        xz = silhouette_mask(bracket, (0, 2), size=64)
        assert xy.mean() != pytest.approx(xz.mean(), abs=1e-3)

    def test_empty_mesh_rejected(self):
        with pytest.raises(MeshError):
            silhouette_mask(TriangleMesh([], []))
        with pytest.raises(ValueError):
            silhouette_mask(box((1, 1, 1)), size=4)


class TestHuMoments:
    def test_length_and_finiteness(self, bracket):
        hu = hu_moments(silhouette_mask(bracket, (0, 1)))
        assert hu.shape == (7,)
        assert np.isfinite(hu).all()

    def test_rotation_invariance(self, bracket):
        mask = silhouette_mask(bracket, (0, 1), size=96)
        base = hu_moments(mask)
        for k in (1, 2, 3):
            assert np.allclose(hu_moments(np.rot90(mask, k)), base, atol=1e-6)

    def test_translation_invariance(self, bracket):
        mask = silhouette_mask(bracket, (0, 1), size=96)
        shifted = np.zeros_like(mask)
        shifted[5:, 3:] = mask[:-5, :-3]
        assert np.allclose(hu_moments(shifted), hu_moments(mask), atol=1e-6)

    def test_scale_invariance_approximate(self):
        small = np.zeros((64, 64), dtype=bool)
        small[24:40, 20:44] = True  # 16 x 24 rectangle
        big = np.zeros((64, 64), dtype=bool)
        big[8:40, 8:56] = True  # 32 x 48 rectangle (same aspect)
        assert np.allclose(hu_moments(big)[:4], hu_moments(small)[:4], atol=0.05)

    def test_empty_image_is_zero(self):
        assert np.allclose(hu_moments(np.zeros((16, 16))), 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            hu_moments(np.zeros((4, 4, 4)))

    def test_raw_values_without_log(self, bracket):
        raw = hu_moments(silhouette_mask(bracket, (0, 1)), log_scale=False)
        assert raw[0] > 0  # h1 is a positive second-moment sum


class TestViewDescriptor:
    def test_shape(self, bracket):
        assert view_signatures(bracket).shape == (3, 7)
        assert view_based_descriptor(bracket).shape == (21,)

    def test_distinguishes_shapes(self):
        a = view_based_descriptor(box((4, 1, 1)))
        b = view_based_descriptor(cylinder(1, 4, 24))
        assert not np.allclose(a, b, atol=1e-2)

    def test_registered_extractor(self, bracket):
        from repro.features import FeaturePipeline

        pipe = FeaturePipeline(feature_names=["view_hu"], voxel_resolution=12)
        vec = pipe.extract_one(bracket, "view_hu")
        assert vec.shape == (21,)
        assert np.isfinite(vec).all()


class TestQueryByDrawing:
    @pytest.fixture
    def engine(self):
        from repro.db import ShapeDatabase
        from repro.features import FeaturePipeline
        from repro.search import SearchEngine

        db = ShapeDatabase(
            FeaturePipeline(feature_names=["view_hu"], voxel_resolution=12)
        )
        db.insert_mesh(box((4, 3, 1)), name="plate", group="plates")
        db.insert_mesh(box((4.2, 2.9, 1.1)), name="plate2", group="plates")
        db.insert_mesh(cylinder(1, 5, 24), name="rod", group="rods")
        db.insert_mesh(cylinder(1.1, 5.2, 24), name="rod2", group="rods")
        return SearchEngine(db)

    def test_rect_drawing_finds_plates(self, engine):
        drawing = np.zeros((96, 96), dtype=bool)
        drawing[28:68, 18:78] = True  # a rectangle sketch
        hits = match_drawing(engine, drawing, k=2)
        assert {h.group for h in hits} == {"plates"}

    def test_results_ranked(self, engine):
        drawing = np.zeros((96, 96), dtype=bool)
        drawing[28:68, 18:78] = True
        hits = match_drawing(engine, drawing, k=4)
        dists = [h.distance for h in hits]
        assert dists == sorted(dists)
        assert [h.rank for h in hits] == [1, 2, 3, 4]
