"""Tests for :mod:`repro.lint.cfg` (CFG builder) and
:mod:`repro.lint.flow` (forward dataflow engine).

The builder cases here are the tricky shapes the flow rules depend on:
``try/finally`` with ``return`` in both arms, ``while/else``, nested
``with`` acquiring two locks, comprehension scopes, and ``match``
statements.  Assertions pin block/edge counts and edge kinds, and every
case also runs a dataflow fixpoint to prove termination.
"""

import ast
import sys

import pytest

from repro.lint.cfg import (
    LoopHead,
    WithEnter,
    WithExit,
    build_cfg,
    iter_function_defs,
)
from repro.lint.flow import (
    ForwardAnalysis,
    HeldLocksAnalysis,
    LiveResourcesAnalysis,
    iter_instr_states,
    run_forward,
)


def cfg_of(source):
    """Build the CFG of the first function in ``source``."""
    tree = ast.parse(source)
    func = next(iter_function_defs(tree))
    return build_cfg(func)


def edge_kinds(cfg):
    counts = {}
    for _, _, kind in cfg.edges():
        counts[kind] = counts.get(kind, 0) + 1
    return counts


class _ReachAnalysis(ForwardAnalysis):
    """Trivial lattice ({()} set) used purely to prove termination."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, instr, state):
        return state


def assert_fixpoint_terminates(cfg):
    result = run_forward(cfg, _ReachAnalysis())
    assert result.iterations <= 4 * max(len(cfg.blocks), 1)
    return result


# ----------------------------------------------------------------------
# builder edge cases
# ----------------------------------------------------------------------
class TestTryFinally:
    SRC = (
        "def f(x):\n"
        "    try:\n"
        "        return 1\n"
        "    finally:\n"
        "        return 2\n"
    )

    def test_return_in_both_arms(self):
        cfg = cfg_of(self.SRC)
        assert len(cfg.blocks) == 8
        kinds = edge_kinds(cfg)
        assert kinds["normal"] == 5
        assert kinds["except"] == 2
        # Both the return-route finally clone and the exception-route
        # clone end in `return 2`, so both flow to the *normal* exit...
        exit_pred_bids = {b.bid for b, _ in cfg.exit.preds}
        assert len(exit_pred_bids) >= 2
        # ...and the raise-exit is unreachable: a `return` in finally
        # swallows the in-flight exception, exactly like CPython.
        assert cfg.raise_exit.preds == []
        assert_fixpoint_terminates(cfg)

    def test_finally_body_is_cloned_per_route(self):
        cfg = cfg_of(self.SRC)
        finally_returns = [
            instr
            for block in cfg.blocks
            for instr in block.instrs
            if isinstance(instr, ast.Return)
            and isinstance(instr.value, ast.Constant)
            and instr.value.value == 2
        ]
        # One clone for the try-body return route, one for the
        # unmatched-exception route.
        assert len(finally_returns) == 2

    def test_exception_route_without_return_reaches_raise_exit(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    try:\n"
            "        risky()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        raise_pred_kinds = {kind for _, kind in cfg.raise_exit.preds}
        assert raise_pred_kinds == {"except"}
        assert_fixpoint_terminates(cfg)


class TestWhileElse:
    SRC = (
        "def f(xs):\n"
        "    i = 0\n"
        "    while i < 3:\n"
        "        i += 1\n"
        "    else:\n"
        "        done = True\n"
        "    return i\n"
    )

    def test_blocks_and_edges(self):
        cfg = cfg_of(self.SRC)
        assert len(cfg.blocks) == 7
        assert len(cfg.edges()) == 6
        assert edge_kinds(cfg) == {"normal": 3, "true": 1, "false": 1, "back": 1}
        assert_fixpoint_terminates(cfg)

    def test_else_runs_on_normal_loop_exit_only(self):
        cfg = cfg_of(self.SRC)
        (header,) = [
            b for b in cfg.blocks if any(isinstance(i, LoopHead) for i in b.instrs)
        ]
        false_succs = [b for b, k in header.succs if k == "false"]
        assert len(false_succs) == 1
        assert false_succs[0].label == "loop-else"

    def test_break_skips_else(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    while cond():\n"
            "        break\n"
            "    else:\n"
            "        done = True\n"
            "    return 1\n"
        )
        (after,) = [b for b in cfg.blocks if b.label == "loop-after"]
        pred_labels = {b.label for b, _ in after.preds}
        # The break edge lands on loop-after directly, bypassing else.
        assert "loop-body" in pred_labels
        assert_fixpoint_terminates(cfg)


class TestNestedWith:
    SRC = (
        "def f(self):\n"
        "    with self._a:\n"
        "        with self._b:\n"
        "            self._x = 1\n"
        "    return None\n"
    )

    def test_straight_line_single_block(self):
        cfg = cfg_of(self.SRC)
        assert len(cfg.blocks) == 3  # entry + exit + raise-exit
        assert cfg.edges() == [(cfg.entry.bid, cfg.exit.bid, "normal")]
        enters = [i for i in cfg.entry.instrs if isinstance(i, WithEnter)]
        exits = [i for i in cfg.entry.instrs if isinstance(i, WithExit)]
        assert len(enters) == 2
        assert len(exits) == 2

    def test_both_locks_held_at_inner_write(self):
        cfg = cfg_of(self.SRC)
        analysis = HeldLocksAnalysis("self", frozenset({"_a", "_b"}))
        result = run_forward(cfg, analysis)
        states_at_assign = [
            state
            for instr, state in iter_instr_states(
                analysis, cfg.entry, result.block_in[cfg.entry.bid]
            )
            if isinstance(instr, ast.Assign)
        ]
        assert states_at_assign == [frozenset({"_a", "_b"})]

    def test_locks_released_in_reverse_order(self):
        cfg = cfg_of(self.SRC)
        analysis = HeldLocksAnalysis("self", frozenset({"_a", "_b"}))
        result = run_forward(cfg, analysis)
        assert result.block_out[cfg.entry.bid] == frozenset()


class TestComprehensions:
    SRC = (
        "def f(xs):\n"
        "    ys = [x * 2 for x in xs]\n"
        "    zs = {x: y for x, y in zip(xs, ys)}\n"
        "    return sum(y for y in ys)\n"
    )

    def test_comprehensions_do_not_create_loop_blocks(self):
        cfg = cfg_of(self.SRC)
        assert len(cfg.blocks) == 3
        assert edge_kinds(cfg) == {"normal": 1}
        assert not any(
            isinstance(i, LoopHead) for b in cfg.blocks for i in b.instrs
        )
        assert_fixpoint_terminates(cfg)

    def test_nested_def_is_opaque(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    def g(y):\n"
            "        while True:\n"
            "            pass\n"
            "    return g\n"
        )
        # The nested def is one instruction; its infinite loop does not
        # leak blocks or edges into the outer graph.
        assert len(cfg.blocks) == 3
        assert edge_kinds(cfg) == {"normal": 1}


@pytest.mark.skipif(
    sys.version_info < (3, 10), reason="match statements need Python 3.10+"
)
class TestMatch:
    SRC = (
        "def f(v):\n"
        "    match v:\n"
        "        case 0:\n"
        "            r = 'zero'\n"
        "        case [a, b]:\n"
        "            r = 'pair'\n"
        "        case _:\n"
        "            r = 'other'\n"
        "    return r\n"
    )

    def test_blocks_and_edges(self):
        cfg = cfg_of(self.SRC)
        assert len(cfg.blocks) == 7
        assert edge_kinds(cfg) == {"true": 3, "normal": 4}
        assert_fixpoint_terminates(cfg)

    def test_wildcard_match_has_no_fallthrough(self):
        cfg = cfg_of(self.SRC)
        # An unguarded `case _` is exhaustive: the head has no false
        # edge to match-after.
        head_kinds = {kind for _, kind in cfg.entry.succs}
        assert head_kinds == {"true"}

    def test_non_exhaustive_match_keeps_fallthrough(self):
        cfg = cfg_of(
            "def f(v):\n"
            "    match v:\n"
            "        case 0:\n"
            "            r = 'zero'\n"
            "    return v\n"
        )
        head_kinds = {kind for _, kind in cfg.entry.succs}
        assert head_kinds == {"true", "false"}
        assert_fixpoint_terminates(cfg)


class TestLoopsAndRaise:
    def test_for_loop_back_edge(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    total = 0\n"
            "    for x in xs:\n"
            "        total += x\n"
            "    return total\n"
        )
        assert edge_kinds(cfg)["back"] == 1
        assert_fixpoint_terminates(cfg)

    def test_continue_targets_header(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x < 0:\n"
            "            continue\n"
            "        use(x)\n"
            "    return 1\n"
        )
        (header,) = [
            b for b in cfg.blocks if any(isinstance(i, LoopHead) for i in b.instrs)
        ]
        # back edge from the body end plus the continue's direct jump
        back_like = [b for b, kind in header.preds if kind in ("back", "normal")]
        assert len(back_like) >= 2
        assert_fixpoint_terminates(cfg)

    def test_uncaught_raise_reaches_raise_exit(self):
        cfg = cfg_of("def f():\n    raise ValueError('x')\n")
        assert [(b.bid, k) for b, k in cfg.raise_exit.preds] == [
            (cfg.entry.bid, "except")
        ]

    def test_caught_raise_reaches_handler(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        raise ValueError('x')\n"
            "    except ValueError:\n"
            "        return None\n"
        )
        (handler,) = [b for b in cfg.blocks if b.label == "handler"]
        assert {kind for _, kind in handler.preds} == {"except"}
        assert_fixpoint_terminates(cfg)

    def test_code_after_return_is_disconnected(self):
        cfg = cfg_of("def f():\n    return 1\n    x = 2\n")
        (dangling,) = [b for b in cfg.blocks if b.label == "unreachable"]
        assert dangling.preds == []
        result = assert_fixpoint_terminates(cfg)
        assert result.block_in[dangling.bid] is None


# ----------------------------------------------------------------------
# dataflow engine semantics
# ----------------------------------------------------------------------
class TestEngine:
    def test_must_join_is_intersection_across_branches(self):
        cfg = cfg_of(
            "def f(self, flag):\n"
            "    if flag:\n"
            "        self._lock.acquire()\n"
            "    self._x = 1\n"
            "    return None\n"
        )
        analysis = HeldLocksAnalysis("self", frozenset({"_lock"}))
        result = run_forward(cfg, analysis)
        (after,) = [b for b in cfg.blocks if b.label == "if-after"]
        # One branch holds the lock, the other does not: must-hold is
        # the intersection, i.e. nothing.
        assert result.block_in[after.bid] == frozenset()

    def test_loop_fixpoint_converges_with_union_join(self):
        cfg = cfg_of(
            "def f(paths):\n"
            "    h = None\n"
            "    for p in paths:\n"
            "        h = open(p)\n"
            "        h.close()\n"
            "    return 1\n"
        )
        result = run_forward(cfg, LiveResourcesAnalysis())
        assert result.block_in[cfg.exit.bid] == frozenset()

    def test_non_monotone_analysis_raises_instead_of_hanging(self):
        class Flapping(ForwardAnalysis):
            def initial(self):
                return 0

            def join(self, a, b):
                return max(a, b)

            def transfer(self, instr, state):
                return state + 1  # grows forever along the back edge

        cfg = cfg_of(
            "def f(xs):\n"
            "    while cond():\n"
            "        step()\n"
            "    return 1\n"
        )
        with pytest.raises(RuntimeError, match="did not converge"):
            run_forward(cfg, Flapping(), max_iterations=50)

    def test_exception_edge_filter_is_applied(self):
        cfg = cfg_of(
            "def f(p):\n"
            "    h = open(p)\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        cleanup()\n"
            "    h.close()\n"
            "    return 1\n"
        )
        result = run_forward(cfg, LiveResourcesAnalysis())
        (handler,) = [b for b in cfg.blocks if b.label == "handler"]
        # LiveResources kills state on except edges: leaks are judged
        # on non-exceptional paths only.
        assert result.block_in[handler.bid] == frozenset()
        assert result.block_in[cfg.exit.bid] == frozenset()
