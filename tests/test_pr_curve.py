"""PR curve construction on the evaluation database."""

import numpy as np
import pytest

from repro.evaluation import interpolated_precision, precision_recall_curve
from repro.evaluation.pr_curve import adaptive_thresholds


@pytest.fixture(scope="module")
def curve(eval_engine, eval_db):
    query = sorted(eval_db.classification_map()["l_bracket"])[0]
    return precision_recall_curve(eval_engine, query, "principal_moments")


class TestCurveShape:
    def test_recall_monotone_as_threshold_drops(self, curve):
        thresholds = [p.threshold for p in curve.points]
        recalls = [p.recall for p in curve.points]
        assert thresholds == sorted(thresholds, reverse=True)
        assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:]))

    def test_retrieved_counts_monotone(self, curve):
        counts = [p.n_retrieved for p in curve.points]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_reaches_full_recall(self, curve):
        assert curve.points[-1].recall == pytest.approx(1.0)

    def test_precision_in_unit_interval(self, curve):
        for p in curve.points:
            assert 0.0 <= p.precision <= 1.0
            assert 0.0 <= p.recall <= 1.0

    def test_adaptive_thresholds_cover_all_sizes(self, eval_engine, eval_db):
        query = sorted(eval_db.classification_map()["l_bracket"])[0]
        ths = adaptive_thresholds(eval_engine, query, "principal_moments")
        assert len(ths) >= 100  # near one threshold per database shape
        assert ths == sorted(ths, reverse=True)

    def test_noise_query_rejected(self, eval_engine, eval_db):
        noise_id = next(r.shape_id for r in eval_db if r.group is None)
        with pytest.raises(ValueError):
            precision_recall_curve(eval_engine, noise_id, "principal_moments")


class TestInterpolation:
    def test_interpolated_precision_monotone_decreasing(self, curve):
        levels = np.linspace(0, 1, 11)
        interp = interpolated_precision(curve, levels)
        assert all(b <= a + 1e-12 for a, b in zip(interp, interp[1:]))

    def test_interpolated_at_zero_is_max_precision(self, curve):
        interp = interpolated_precision(curve, [0.0])
        assert interp[0] == pytest.approx(max(p.precision for p in curve.points))


class TestDegeneracyDetection:
    def test_eigenvalue_curves_flag_more_degenerate(self, eval_engine, eval_db):
        from repro.evaluation import exp_pr_curves

        result = exp_pr_curves(eval_db, eval_engine)
        eig = result.degenerate_count("eigenvalues")
        pm = result.degenerate_count("principal_moments")
        assert eig >= pm  # the paper's observation

    def test_single_point_curve_is_degenerate(self, curve):
        from repro.evaluation.pr_curve import PRCurve

        stub = PRCurve(query_id=0, feature_name="x", points=curve.points[:1])
        assert stub.is_degenerate()
