"""Similarity measure, search engine, multi-step, relevance feedback."""

import numpy as np
import pytest

from repro.db import ShapeDatabase
from repro.features import FeaturePipeline
from repro.geometry import box, cylinder, torus, tube
from repro.search import (
    MultiStepPlan,
    RelevanceFeedbackSession,
    SearchEngine,
    SimilarityMeasure,
    multi_step_search,
    one_shot_search,
    range_weights,
    reconfigure_weights,
    reconstruct_query,
    weighted_distance,
)


@pytest.fixture
def db():
    database = ShapeDatabase(FeaturePipeline(voxel_resolution=12))
    database.insert_mesh(box((2, 3, 4)), group="boxes")
    database.insert_mesh(box((2.1, 3.1, 3.9)), group="boxes")
    database.insert_mesh(box((1.9, 2.9, 4.1)), group="boxes")
    database.insert_mesh(cylinder(1, 4, 16), group="cyls")
    database.insert_mesh(cylinder(1.1, 3.8, 16), group="cyls")
    database.insert_mesh(torus(2, 0.5, 16, 8))
    database.insert_mesh(tube(2, 1, 1, 16))
    return database


@pytest.fixture
def engine(db):
    return SearchEngine(db)


class TestWeightedDistance:
    def test_unweighted_is_euclidean(self):
        assert weighted_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_weights_scale_dimensions(self):
        d = weighted_distance([0, 0], [1, 1], weights=np.array([4.0, 0.0]))
        assert d == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_distance([0, 0], [1, 1, 1])
        with pytest.raises(ValueError):
            weighted_distance([0, 0], [1, 1], weights=np.ones(3))

    def test_range_weights(self):
        mat = np.array([[0.0, 0.0], [2.0, 10.0]])
        w = range_weights(mat)
        assert w == pytest.approx([0.25, 0.01])

    def test_range_weights_constant_dim_zero(self):
        mat = np.array([[1.0, 5.0], [1.0, 6.0]])
        assert range_weights(mat)[0] == 0.0


class TestSimilarityMeasure:
    def test_dmax_is_max_pairwise(self):
        mat = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        m = SimilarityMeasure(mat, weighting="uniform")
        assert m.d_max == pytest.approx(5.0)

    def test_similarity_range(self):
        mat = np.array([[0.0], [10.0]])
        m = SimilarityMeasure(mat, weighting="uniform")
        assert m.similarity(np.array([0.0]), np.array([0.0])) == 1.0
        assert m.similarity(np.array([0.0]), np.array([10.0])) == 0.0

    def test_similarity_clamped_beyond_dmax(self):
        mat = np.array([[0.0], [1.0]])
        m = SimilarityMeasure(mat, weighting="uniform")
        assert m.similarity(np.array([0.0]), np.array([5.0])) == 0.0

    def test_identical_points_dmax_guard(self):
        mat = np.array([[1.0, 1.0], [1.0, 1.0]])
        m = SimilarityMeasure(mat)
        assert m.d_max == 1.0

    def test_radius_for_threshold(self):
        mat = np.array([[0.0], [2.0]])
        m = SimilarityMeasure(mat, weighting="uniform")
        assert m.radius_for_threshold(0.75) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            m.radius_for_threshold(1.5)

    def test_explicit_weights(self):
        mat = np.array([[0.0, 0.0], [1.0, 1.0]])
        m = SimilarityMeasure(mat, weighting=np.array([1.0, 0.0]))
        assert m.distance(mat[0], mat[1]) == pytest.approx(1.0)

    def test_bad_weighting(self):
        mat = np.array([[0.0], [1.0]])
        with pytest.raises(ValueError):
            SimilarityMeasure(mat, weighting="bogus")
        with pytest.raises(ValueError):
            SimilarityMeasure(mat, weighting=np.ones(3))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            SimilarityMeasure(np.zeros((0, 2)))


class TestSearchEngine:
    def test_knn_excludes_query_shape(self, engine):
        hits = engine.search_knn(1, "principal_moments", k=3)
        assert all(h.shape_id != 1 for h in hits)
        assert len(hits) == 3

    def test_knn_finds_group_members_first(self, engine):
        hits = engine.search_knn(1, "principal_moments", k=2)
        assert {h.shape_id for h in hits} == {2, 3}

    def test_knn_keeps_query_when_asked(self, engine):
        hits = engine.search_knn(1, "principal_moments", k=1, exclude_query=False)
        assert hits[0].shape_id == 1
        assert hits[0].similarity == pytest.approx(1.0)

    def test_query_by_mesh(self, engine):
        hits = engine.search_knn(box((2, 3, 4)), "principal_moments", k=2)
        assert {h.shape_id for h in hits} <= {1, 2, 3}

    def test_query_by_vector(self, engine, db):
        vec = db.get(4).feature("principal_moments")
        hits = engine.search_knn(vec, "principal_moments", k=1)
        assert hits[0].shape_id == 4

    def test_results_ranked_and_annotated(self, engine):
        hits = engine.search_knn(1, "principal_moments", k=3)
        assert [h.rank for h in hits] == [1, 2, 3]
        assert hits[0].distance <= hits[1].distance <= hits[2].distance
        assert hits[0].similarity >= hits[1].similarity
        assert hits[0].group == "boxes"

    def test_threshold_query(self, engine):
        strict = engine.search_threshold(1, "principal_moments", threshold=0.999)
        loose = engine.search_threshold(1, "principal_moments", threshold=0.0)
        assert len(strict) <= len(loose)
        assert len(loose) == 6  # everything except the query

    def test_rerank_orders_candidates(self, engine):
        reranked = engine.rerank([6, 4, 2], 1, "principal_moments")
        assert {r.shape_id for r in reranked} == {6, 4, 2}
        assert reranked[0].shape_id == 2  # the fellow box comes first

    def test_bad_query_vector_shape(self, engine):
        with pytest.raises(ValueError):
            engine.search_knn(np.zeros((2, 2)), "principal_moments")

    def test_mesh_query_without_pipeline(self, db):
        db.pipeline = None
        engine = SearchEngine(db)
        with pytest.raises(RuntimeError):
            engine.search_knn(box((1, 1, 1)), "principal_moments")

    def test_measure_cache_invalidation(self, engine, db):
        m1 = engine.measure("principal_moments")
        assert engine.measure("principal_moments") is m1
        engine.invalidate()
        assert engine.measure("principal_moments") is not m1


class TestMultiStep:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            MultiStepPlan(steps=[("a", 10)])
        with pytest.raises(ValueError):
            MultiStepPlan(steps=[("a", 10), ("b", 20)])  # increasing keep
        with pytest.raises(ValueError):
            MultiStepPlan(steps=[("a", 10), ("b", 0)])

    def test_default_plan_is_papers(self, engine):
        results = multi_step_search(engine, 1)
        assert len(results) <= 10

    def test_filter_subset_of_pool(self, engine):
        pool = engine.search_knn(1, "moment_invariants", k=5)
        plan = MultiStepPlan(steps=[("moment_invariants", 5), ("geometric_params", 3)])
        filtered = multi_step_search(engine, 1, plan)
        assert {r.shape_id for r in filtered} <= {r.shape_id for r in pool}
        assert len(filtered) == 3

    def test_three_step_plan(self, engine):
        plan = MultiStepPlan(
            steps=[
                ("moment_invariants", 6),
                ("principal_moments", 4),
                ("geometric_params", 2),
            ]
        )
        assert len(multi_step_search(engine, 1, plan)) == 2

    def test_one_shot_helper(self, engine):
        assert len(one_shot_search(engine, 1, "principal_moments", k=3)) == 3

    def test_deterministic(self, engine):
        a = [r.shape_id for r in multi_step_search(engine, 1)]
        b = [r.shape_id for r in multi_step_search(engine, 1)]
        assert a == b


class TestRelevanceFeedback:
    def test_rocchio_moves_toward_relevant(self):
        q = np.zeros(2)
        out = reconstruct_query(q, [np.array([2.0, 0.0])], alpha=1.0, beta=0.5)
        assert np.allclose(out, [2.0 / 3.0, 0.0])  # (0 + 0.5*2) / 1.5

    def test_rocchio_moves_away_from_irrelevant(self):
        q = np.zeros(2)
        out = reconstruct_query(
            q, [], [np.array([0.0, 2.0])], alpha=1.0, gamma=0.5
        )
        assert np.allclose(out, [0.0, -2.0])  # (0 - 0.5*2) / 0.5

    def test_reweight_tight_dimension_gets_more(self):
        rel = [np.array([1.0, 0.0]), np.array([1.0, 10.0]), np.array([1.0, -10.0])]
        w = reconfigure_weights(rel)
        assert w[0] > w[1]
        assert w.sum() == pytest.approx(2.0)

    def test_reweight_single_example_keeps_base(self):
        base = np.array([3.0, 4.0])
        w = reconfigure_weights([np.array([1.0, 1.0])], base_weights=base)
        assert np.allclose(w, base)

    def test_session_round_trip(self, engine):
        session = RelevanceFeedbackSession(engine, 1, "geometric_params", k=4)
        first = session.search()
        assert len(first) == 4
        relevant = [r.shape_id for r in first if r.group == "boxes"]
        irrelevant = [r.shape_id for r in first if r.group != "boxes"]
        session.feedback(relevant, irrelevant)
        assert session.rounds == 1
        second = session.search()
        assert len(second) == 4

    def test_session_feedback_improves_box_rank(self, engine):
        # Mark the two other boxes relevant; box ranks should not get worse.
        session = RelevanceFeedbackSession(engine, 1, "principal_moments", k=6)
        before = [r.shape_id for r in session.search()]
        session.feedback([2, 3], [6, 7])
        after = [r.shape_id for r in session.search()]
        rank_before = min(before.index(2), before.index(3))
        rank_after = min(after.index(2), after.index(3))
        assert rank_after <= rank_before
