"""Precision/recall metrics (Eq. 4.1-4.2) and ranked variants."""

import pytest

from repro.evaluation import (
    average_precision,
    evaluate_retrieval,
    precision_at_k,
    recall_at_k,
)


class TestEvaluateRetrieval:
    def test_perfect_retrieval(self):
        pr = evaluate_retrieval([1, 2, 3], [1, 2, 3])
        assert pr.precision == 1.0
        assert pr.recall == 1.0

    def test_partial(self):
        pr = evaluate_retrieval([1, 2, 9, 8], [1, 2, 3])
        assert pr.precision == pytest.approx(0.5)
        assert pr.recall == pytest.approx(2 / 3)
        assert pr.n_hits == 2

    def test_empty_retrieval(self):
        pr = evaluate_retrieval([], [1, 2])
        assert pr.precision == 0.0
        assert pr.recall == 0.0

    def test_duplicates_collapse(self):
        pr = evaluate_retrieval([1, 1, 1], [1, 2])
        assert pr.n_retrieved == 1
        assert pr.precision == 1.0

    def test_empty_relevant_rejected(self):
        with pytest.raises(ValueError):
            evaluate_retrieval([1], [])

    def test_inverse_relationship_example(self):
        # Paper Sec. 4.1: loose threshold -> recall 1 but low precision.
        loose = evaluate_retrieval(range(100), [5, 6])
        assert loose.recall == 1.0
        assert loose.precision == pytest.approx(0.02)


class TestRankedMetrics:
    def test_precision_at_k(self):
        ranked = [1, 9, 2, 8, 3]
        assert precision_at_k(ranked, [1, 2, 3], 1) == 1.0
        assert precision_at_k(ranked, [1, 2, 3], 2) == 0.5
        assert precision_at_k(ranked, [1, 2, 3], 5) == pytest.approx(0.6)

    def test_recall_at_k(self):
        ranked = [1, 9, 2, 8, 3]
        assert recall_at_k(ranked, [1, 2, 3], 1) == pytest.approx(1 / 3)
        assert recall_at_k(ranked, [1, 2, 3], 5) == 1.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [1], 0)
        with pytest.raises(ValueError):
            recall_at_k([1], [], 1)

    def test_average_precision_perfect(self):
        assert average_precision([1, 2, 3], [1, 2, 3]) == 1.0

    def test_average_precision_interleaved(self):
        # Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        assert average_precision([1, 9, 2], [1, 2]) == pytest.approx((1 + 2 / 3) / 2)

    def test_average_precision_none_found(self):
        assert average_precision([7, 8], [1, 2]) == 0.0

    def test_average_precision_requires_relevant(self):
        with pytest.raises(ValueError):
            average_precision([1], [])
