"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evaluation import evaluate_retrieval
from repro.geometry import (
    box,
    random_rotation,
    rotate,
    scale,
    translate,
    volume,
)
from repro.geometry.polygon import polygon_area, triangulate_polygon
from repro.index import LinearScanIndex, Rect, RTree
from repro.moments import mesh_moment, moment_invariants
from repro.search import SimilarityMeasure, weighted_distance

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(min_value=0.1, max_value=50.0)


class TestGeometryProperties:
    @given(
        extents=st.tuples(positive_floats, positive_floats, positive_floats),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_volume_invariant_under_rigid_motion(self, extents, seed):
        rng = np.random.default_rng(seed)
        mesh = box(extents)
        moved = translate(rotate(mesh, random_rotation(rng)), rng.uniform(-9, 9, 3))
        assert volume(moved) == pytest.approx(np.prod(extents), rel=1e-9)

    @given(
        extents=st.tuples(positive_floats, positive_floats, positive_floats),
        factor=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_volume_scales_cubically(self, extents, factor):
        mesh = box(extents)
        assert volume(scale(mesh, factor)) == pytest.approx(
            np.prod(extents) * factor**3, rel=1e-9
        )

    @given(
        extents=st.tuples(positive_floats, positive_floats, positive_floats),
        seed=st.integers(0, 2**31 - 1),
        factor=st.floats(min_value=0.2, max_value=5.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_moment_invariants_invariant(self, extents, seed, factor):
        assume(max(extents) / min(extents) < 50)
        rng = np.random.default_rng(seed)
        mesh = box(extents)
        base = moment_invariants(mesh)
        moved = translate(
            scale(rotate(mesh, random_rotation(rng)), factor), rng.uniform(-9, 9, 3)
        )
        assert np.allclose(moment_invariants(moved), base, rtol=1e-6, atol=1e-12)

    @given(
        extents=st.tuples(positive_floats, positive_floats, positive_floats),
        center=st.tuples(finite_floats, finite_floats, finite_floats),
    )
    @settings(max_examples=30, deadline=None)
    def test_first_moment_is_volume_times_centroid(self, extents, center):
        mesh = box(extents, center=center)
        vol = np.prod(extents)
        assert mesh_moment(mesh, 1, 0, 0) == pytest.approx(
            vol * center[0], rel=1e-9, abs=1e-7
        )


class TestPolygonProperties:
    @given(
        n=st.integers(min_value=3, max_value=12),
        radius=st.floats(min_value=0.5, max_value=20.0),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_triangulation_preserves_area_for_star_shaped(self, n, radius, seed):
        rng = np.random.default_rng(seed)
        # Star-shaped about the origin (angles cover the full circle with
        # one vertex per sector), which guarantees a simple polygon.
        radii = radius * rng.uniform(0.5, 1.0, n)
        angles = 2 * np.pi * (np.arange(n) + rng.uniform(0.05, 0.95, n)) / n
        pts = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        tris = triangulate_polygon(pts)
        covered = sum(
            0.5
            * abs(
                (pts[b][0] - pts[a][0]) * (pts[c][1] - pts[a][1])
                - (pts[b][1] - pts[a][1]) * (pts[c][0] - pts[a][0])
            )
            for a, b, c in tris
        )
        assert covered == pytest.approx(abs(polygon_area(pts)), rel=1e-9)


class TestIndexProperties:
    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(5, 60), st.just(3)),
            elements=finite_floats,
        ),
        k=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_rtree_knn_matches_linear_scan(self, data, k, seed):
        tree = RTree(3, max_entries=5)
        lin = LinearScanIndex(3)
        for i, p in enumerate(data):
            tree.insert(p, i)
            lin.insert(p, i)
        tree.check_invariants()
        q = np.random.default_rng(seed).uniform(-100, 100, 3)
        a = tree.nearest(q, k=k)
        b = lin.nearest(q, k=k)
        assert np.allclose([d for _, d in a], [d for _, d in b])

    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(5, 60), st.just(2)),
            elements=finite_floats,
        ),
        radius=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_rtree_radius_matches_linear_scan(self, data, radius):
        tree = RTree(2, max_entries=4)
        lin = LinearScanIndex(2)
        for i, p in enumerate(data):
            tree.insert(p, i)
            lin.insert(p, i)
        q = data[0]
        a = sorted(i for i, _ in tree.radius_search(q, radius))
        b = sorted(i for i, _ in lin.radius_search(q, radius))
        assert a == b

    @given(
        mins=st.tuples(finite_floats, finite_floats),
        spans=st.tuples(positive_floats, positive_floats),
        point=st.tuples(finite_floats, finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_mindist_lower_bounds_inner_points(self, mins, spans, point):
        rect = Rect(np.array(mins), np.array(mins) + np.array(spans))
        inner = (rect.mins + rect.maxs) / 2
        p = np.asarray(point)
        assert rect.min_dist(p) <= np.linalg.norm(p - inner) + 1e-9


class TestSimilarityProperties:
    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(2, 40), st.integers(1, 6)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_similarity_bounded_for_stored_pairs(self, data):
        measure = SimilarityMeasure(data, weighting="uniform")
        for i in range(0, len(data), 7):
            s = measure.similarity(data[0], data[i])
            assert 0.0 <= s <= 1.0
        assert measure.similarity(data[0], data[0]) == 1.0

    @given(
        a=arrays(np.float64, 4, elements=finite_floats),
        b=arrays(np.float64, 4, elements=finite_floats),
        c=arrays(np.float64, 4, elements=finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_weighted_distance_triangle_inequality(self, a, b, c):
        w = np.array([1.0, 2.0, 0.5, 3.0])
        ab = weighted_distance(a, b, w)
        bc = weighted_distance(b, c, w)
        ac = weighted_distance(a, c, w)
        assert ac <= ab + bc + 1e-7

    @given(
        a=arrays(np.float64, 3, elements=finite_floats),
        b=arrays(np.float64, 3, elements=finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_weighted_distance_symmetry(self, a, b):
        w = np.array([0.5, 1.5, 2.0])
        assert weighted_distance(a, b, w) == pytest.approx(
            weighted_distance(b, a, w)
        )


class TestMetricProperties:
    @given(
        retrieved=st.lists(st.integers(0, 30), max_size=25),
        relevant=st.lists(st.integers(0, 30), min_size=1, max_size=25),
    )
    @settings(max_examples=80, deadline=None)
    def test_precision_recall_bounds(self, retrieved, relevant):
        pr = evaluate_retrieval(retrieved, relevant)
        assert 0.0 <= pr.precision <= 1.0
        assert 0.0 <= pr.recall <= 1.0
        assert pr.n_hits <= min(pr.n_retrieved, pr.n_relevant)

    @given(relevant=st.lists(st.integers(0, 30), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_retrieving_everything_gives_full_recall(self, relevant):
        pr = evaluate_retrieval(list(range(31)), relevant)
        assert pr.recall == 1.0


class TestHuMomentProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        shift=st.tuples(st.integers(0, 10), st.integers(0, 10)),
    )
    @settings(max_examples=30, deadline=None)
    def test_hu_translation_invariance(self, seed, shift):
        from repro.descriptors import hu_moments

        rng = np.random.default_rng(seed)
        blob = np.zeros((64, 64), dtype=bool)
        blob[12:30, 10:40] = rng.random((18, 30)) < 0.7
        assume(blob.sum() > 20)
        moved = np.zeros_like(blob)
        dy, dx = shift
        moved[12 + dy : 30 + dy, 10 + dx : 40 + dx] = blob[12:30, 10:40]
        assert np.allclose(hu_moments(moved), hu_moments(blob), atol=1e-6)

    @given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_hu_rot90_invariance(self, seed, k):
        from repro.descriptors import hu_moments

        rng = np.random.default_rng(seed)
        blob = rng.random((48, 48)) < 0.3
        assume(blob.sum() > 20)
        assert np.allclose(hu_moments(np.rot90(blob, k)), hu_moments(blob), atol=1e-6)


class TestDecimateProperties:
    @given(
        extents=st.tuples(positive_floats, positive_floats, positive_floats),
        grid=st.integers(4, 24),
    )
    @settings(max_examples=25, deadline=None)
    def test_decimate_never_grows(self, extents, grid):
        from repro.geometry import box as make_box
        from repro.geometry import decimate

        mesh = make_box(extents)
        out = decimate(mesh, grid=grid)
        assert out.n_faces <= mesh.n_faces
        assert out.n_vertices <= mesh.n_vertices

    @given(grid=st.integers(8, 32))
    @settings(max_examples=15, deadline=None)
    def test_decimated_sphere_volume_bounded(self, grid):
        from repro.geometry import decimate, uv_sphere, volume

        dense = uv_sphere(1.0, 24, 48)
        out = decimate(dense, grid=grid)
        if out.n_faces:
            assert volume(out) <= volume(dense) * 1.2


class TestCombinedWeightProperties:
    @given(
        raw=st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=6
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_weights_always_normalized(self, raw):
        from repro.search import CombinedSimilarity

        combo = CombinedSimilarity(
            weights={f"f{i}": w for i, w in enumerate(raw)}
        )
        assert sum(combo.weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in combo.weights.values())


class TestDendrogramProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 25),
        k=st.integers(1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_cut_always_partitions(self, seed, n, k):
        from repro.cluster import agglomerative

        assume(k <= n)
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 3))
        labels = agglomerative(data).cut(k)
        assert len(labels) == n
        assert len(np.unique(labels)) == k

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_single_linkage_merge_distances_monotone(self, seed, n):
        from repro.cluster import agglomerative

        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 3))
        dendro = agglomerative(data, linkage="single")
        dists = [m.distance for m in dendro.merges]
        assert all(b >= a - 1e-9 for a, b in zip(dists, dists[1:]))
