"""Fault-injection tests: ingestion quarantine, worker timeouts, degraded
extraction, and save-directory corruption salvage."""

import json
import os
import time

import numpy as np
import pytest

from repro.db import ShapeDatabase, StorageError, salvage_records, verify_database
from repro.features import FeaturePipeline
from repro.features.parallel import ParallelPipeline
from repro.robust import (
    MeshValidationError,
    QuarantineItem,
    QuarantineReport,
    ReproError,
    SkeletonizationError,
    classify_exception,
    validate_mesh,
)

from .faults import (
    flip_byte,
    good_mesh,
    hanging_mesh,
    nan_vertex_mesh,
    register_sleeping_extractor,
    write_broken_off,
    zero_area_mesh,
    zero_extent_mesh,
)

RES = 10


class TestValidator:
    @pytest.mark.parametrize(
        "factory, code",
        [
            (nan_vertex_mesh, "mesh.nonfinite_vertices"),
            (zero_area_mesh, "mesh.degenerate_faces"),
            (zero_extent_mesh, "mesh.zero_extent"),
        ],
    )
    def test_bad_meshes_rejected_with_code(self, factory, code):
        with pytest.raises(MeshValidationError) as excinfo:
            validate_mesh(factory())
        assert excinfo.value.code == code
        assert excinfo.value.stage == "validate"

    def test_good_mesh_passes_with_probe(self):
        validate_mesh(good_mesh(), voxel_resolution=8, probe_voxelization=True)

    def test_taxonomy_is_still_valueerror(self):
        # Historical except-clauses must keep catching these.
        with pytest.raises(ValueError):
            validate_mesh(nan_vertex_mesh())


class TestIngestionQuarantine:
    def test_bad_meshes_quarantined_batch_survives(self):
        meshes = [
            good_mesh(1.0),
            nan_vertex_mesh(),
            good_mesh(1.5),
            zero_area_mesh(),
            zero_extent_mesh(),
            good_mesh(2.0),
        ]
        db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        result = db.insert_meshes(meshes)
        assert len(db) == 3
        # IDs follow input order; failures consume no ID.
        assert result.shape_ids == [1, None, 2, None, None, 3]
        assert [e.index for e in result.errors] == [1, 3, 4]
        codes = {e.name: e.code for e in result.errors}
        assert codes == {
            "nan_vertex": "mesh.nonfinite_vertices",
            "zero_area": "mesh.degenerate_faces",
            "zero_extent": "mesh.zero_extent",
        }
        assert all(e.stage == "validate" for e in result.errors)
        assert all(e.digest for e in result.errors)
        assert "3 full, 0 degraded, 3 failed" in result.summary()

    def test_quarantine_report_roundtrip(self, tmp_path):
        db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        result = db.insert_meshes([good_mesh(), nan_vertex_mesh()])
        report = QuarantineReport()
        for err in result.errors:
            report.add(
                QuarantineItem(
                    index=err.index,
                    name=err.name,
                    stage=err.stage,
                    code=err.code,
                    message=err.message,
                    digest=err.digest,
                )
            )
        assert report.by_stage() == {"validate": 1}
        path = report.write(tmp_path / "quarantine")
        data = json.loads(open(path).read())
        assert data["items"][0]["code"] == "mesh.nonfinite_vertices"
        assert "nan_vertex" in report.summary()


class TestWorkerTimeout:
    def test_hung_worker_terminated_and_retried(self):
        feature = register_sleeping_extractor()
        pipeline = FeaturePipeline(
            feature_names=["geometric_params", feature],
            voxel_resolution=RES,
        )
        par = ParallelPipeline(pipeline, workers=2, task_timeout=2.0, retries=1)
        start = time.monotonic()
        outcomes = par.extract_batch([good_mesh(), hanging_mesh(), good_mesh(1.5)])
        elapsed = time.monotonic() - start
        assert elapsed < 30, "timeout pool must not wait out the hang"
        assert outcomes[0].ok and outcomes[2].ok
        hung = outcomes[1]
        assert not hung.ok
        assert hung.failure.code == "extract.timeout"
        assert hung.attempts == 2  # one retry on a fresh worker
        assert "timed out" in hung.error

    def test_timeout_insert_reports_not_deadlocks(self):
        feature = register_sleeping_extractor()
        pipeline = FeaturePipeline(
            feature_names=["geometric_params", feature],
            voxel_resolution=RES,
        )
        db = ShapeDatabase(pipeline)
        result = db.insert_meshes(
            [good_mesh(), hanging_mesh()],
            workers=2,
            timeout=2.0,
            retries=0,
            degraded=False,
        )
        assert result.shape_ids == [1, None]
        assert result.errors[0].code == "extract.timeout"
        assert result.errors[0].stage == "extract"

    def test_deterministic_failures_not_retried(self):
        # A flat mesh fails extraction identically every attempt; the
        # retry budget must not be burned re-running it.
        from .faults import flat_mesh

        pipeline = FeaturePipeline(voxel_resolution=RES)
        par = ParallelPipeline(pipeline, workers=1, task_timeout=30.0, retries=2)
        outcomes = par.extract_batch([flat_mesh()])
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 1
        assert "volume" in outcomes[0].error


class TestDegradedExtraction:
    def test_skeleton_failure_keeps_geometry_features(self, monkeypatch):
        import repro.features.base as base

        def broken_thin(voxels):
            raise SkeletonizationError(
                "injected thinning failure", code="skeleton.no_convergence"
            )

        monkeypatch.setattr(base, "thin", broken_thin)
        db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        result = db.insert_meshes([good_mesh()], workers=0)
        assert result.shape_ids == [1]
        assert result.degraded_ids == [1]
        record = db.get(1)
        assert record.is_degraded()
        assert sorted(record.features) == [
            "geometric_params",
            "moment_invariants",
            "principal_moments",
        ]
        assert record.metadata["missing.eigenvalues"] == "skeleton.no_convergence"
        assert "1 degraded" in result.summary()

    def test_degraded_disabled_rejects_shape(self, monkeypatch):
        import repro.features.base as base

        def broken_thin(voxels):
            raise SkeletonizationError("injected", code="skeleton.no_convergence")

        monkeypatch.setattr(base, "thin", broken_thin)
        db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        result = db.insert_meshes([good_mesh()], workers=0, degraded=False)
        assert result.shape_ids == [None]
        assert result.errors[0].stage == "skeletonize"

    def test_total_failure_is_error_not_degraded(self):
        from .faults import flat_mesh

        db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
        result = db.insert_meshes([flat_mesh()])
        assert result.shape_ids == [None]
        assert result.degraded_ids == []


@pytest.fixture
def saved_db(tmp_path):
    db = ShapeDatabase(FeaturePipeline(voxel_resolution=RES))
    result = db.insert_meshes(
        [good_mesh(1.0), good_mesh(1.5), good_mesh(2.0)],
        names=["a", "b", "c"],
    )
    assert not result.errors
    path = tmp_path / "db"
    db.save(path)
    return path


class TestCorruptionSalvage:
    def test_clean_directory_verifies(self, saved_db):
        assert verify_database(saved_db) == {}

    def test_flipped_mesh_byte_detected_strict(self, saved_db):
        flip_byte(saved_db / "meshes" / "2.off")
        assert "meshes/2.off" in verify_database(saved_db)
        with pytest.raises(StorageError, match="corrupt mesh"):
            ShapeDatabase.load(saved_db)

    def test_flipped_mesh_byte_salvaged(self, saved_db):
        flip_byte(saved_db / "meshes" / "2.off")
        db = ShapeDatabase.load(saved_db, strict=False)
        assert sorted(r.name for r in db) == ["a", "c"]
        assert [d.shape_id for d in db.dropped_records] == [2]
        assert "checksum mismatch" in db.dropped_records[0].reason

    def test_flipped_features_byte_detected_strict(self, saved_db):
        flip_byte(saved_db / "features.npz")
        with pytest.raises(StorageError, match="integrity"):
            ShapeDatabase.load(saved_db)

    def test_flipped_features_salvages_other_records(self, saved_db):
        # npz members decompress lazily, so one flipped byte corrupts
        # one member: at least the untouched records must survive.
        flip_byte(saved_db / "features.npz")
        records, dropped = salvage_records(saved_db)
        assert len(records) + len(dropped) == 3
        assert len(records) >= 1

    def test_deleted_mesh_file_salvaged(self, saved_db):
        os.unlink(saved_db / "meshes" / "1.off")
        db = ShapeDatabase.load(saved_db, strict=False)
        assert sorted(r.name for r in db) == ["b", "c"]

    def test_strict_error_mentions_salvage(self, saved_db):
        flip_byte(saved_db / "features.npz")
        with pytest.raises(StorageError, match="strict=False"):
            ShapeDatabase.load(saved_db)

    def test_save_is_atomic_swap(self, saved_db, tmp_path):
        # Re-saving over a live directory must never leave tmp/stale
        # siblings or a half-written database.
        db = ShapeDatabase.load(saved_db)
        db.save(saved_db)
        assert verify_database(saved_db) == {}
        siblings = [
            name
            for name in os.listdir(saved_db.parent)
            if "tmp" in name or "stale" in name
        ]
        assert siblings == []


class TestClassification:
    def test_foreign_exception_classified(self):
        info = classify_exception(ZeroDivisionError("boom"))
        assert info.stage == "extract"
        assert info.code == "extract.ZeroDivisionError"
        assert "boom" in info.message

    def test_taxonomy_exception_classified(self):
        try:
            raise SkeletonizationError("x", code="skeleton.no_convergence")
        except ReproError as exc:
            info = classify_exception(exc)
        assert info.stage == "skeletonize"
        assert info.code == "skeleton.no_convergence"
        assert info.digest


class TestBuildDbCli:
    def _make_input_dir(self, tmp_path):
        from repro.geometry.io_off import save_off

        src = tmp_path / "input"
        src.mkdir()
        save_off(good_mesh(1.0), src / "a.off")
        save_off(good_mesh(1.5), src / "b.off")
        write_broken_off(src / "broken.off")
        save_off(zero_area_mesh(), src / "degen.off")
        return src

    def test_on_error_fail_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        src = self._make_input_dir(tmp_path)
        code = main(
            [
                "build-db",
                str(tmp_path / "db"),
                "--from-dir",
                str(src),
                "--resolution",
                str(RES),
            ]
        )
        assert code == 3

    def test_on_error_skip_builds_good_subset(self, tmp_path, capsys):
        from repro.cli import main

        src = self._make_input_dir(tmp_path)
        code = main(
            [
                "build-db",
                str(tmp_path / "db"),
                "--from-dir",
                str(src),
                "--on-error",
                "skip",
                "--resolution",
                str(RES),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built 2 shapes" in out
        assert "quarantine: 2 input(s) rejected" in out
        db = ShapeDatabase.load(tmp_path / "db")
        assert sorted(r.name for r in db) == ["a", "b"]

    def test_on_error_quarantine_dir_exits_5_with_report(self, tmp_path, capsys):
        from repro.cli import main
        from repro.robust.quarantine import REPORT_NAME

        src = self._make_input_dir(tmp_path)
        qdir = tmp_path / "quarantine"
        code = main(
            [
                "build-db",
                str(tmp_path / "db"),
                "--from-dir",
                str(src),
                "--on-error",
                "quarantine-dir",
                "--quarantine-dir",
                str(qdir),
                "--resolution",
                str(RES),
            ]
        )
        assert code == 5
        report = json.loads((qdir / REPORT_NAME).read_text())
        assert {item["name"] for item in report["items"]} == {
            "broken.off",
            "degen",
        }
        codes = {item["code"] for item in report["items"]}
        assert "mesh.parse_error" in codes
        assert "mesh.degenerate_faces" in codes
        # The offending raw file is copied next to the report.
        assert (qdir / "broken.off").exists()
        db = ShapeDatabase.load(tmp_path / "db")
        assert len(db) == 2

    def test_internal_error_exits_4(self, monkeypatch, capsys):
        from repro import cli

        def boom(args):
            raise RuntimeError("injected internal failure")

        # build_parser resolves the handler by name at call time, so
        # patching the module global reroutes `stats` to the bomb.
        monkeypatch.setattr(cli, "_cmd_stats", boom)
        code = cli.main(["stats"])
        assert code == 4
        assert "internal error" in capsys.readouterr().err

    def test_data_error_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["query", str(tmp_path / "missing_db"), "nope.off"])
        assert code == 3
        assert "storage" in capsys.readouterr().err