"""Streaming and synthetic corpus generation (the scale tier)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SYNTHETIC_FEATURE_DIMS,
    build_streaming_database,
    build_synthetic_database,
    stream_corpus,
    synthetic_vector_batches,
)
from repro.search.engine import SearchEngine

RES = 10


def flatten(batches):
    return [shape for batch in batches for shape in batch]


class TestStreamCorpus:
    def test_batch_size_never_changes_the_corpus(self):
        small = flatten(stream_corpus(30, seed=9, batch_size=4))
        large = flatten(stream_corpus(30, seed=9, batch_size=30))
        assert [s.name for s in small] == [s.name for s in large]
        assert [s.group for s in small] == [s.group for s in large]
        for a, b in zip(small, large):
            assert np.array_equal(a.mesh.vertices, b.mesh.vertices)
            assert np.array_equal(a.mesh.faces, b.mesh.faces)

    def test_batches_are_bounded(self):
        sizes = [len(b) for b in stream_corpus(23, seed=1, batch_size=5)]
        assert sizes == [5, 5, 5, 5, 3]

    def test_families_cycle(self):
        shapes = flatten(stream_corpus(27, seed=1, batch_size=27))
        assert shapes[0].group == shapes[26].group
        assert len({s.group for s in shapes}) == 26

    def test_seed_changes_geometry(self):
        a = flatten(stream_corpus(3, seed=1, batch_size=3))
        b = flatten(stream_corpus(3, seed=2, batch_size=3))
        assert not np.array_equal(a[0].mesh.vertices, b[0].mesh.vertices)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            list(stream_corpus(-1))
        with pytest.raises(ValueError):
            list(stream_corpus(5, batch_size=0))


class TestStreamingBuild:
    def test_meshes_dropped_and_db_complete(self):
        db = build_streaming_database(
            4, seed=5, batch_size=2, voxel_resolution=RES
        )
        assert len(db) == 4
        for rec in db:
            assert rec.mesh is None
            assert rec.features
        assert db.matrix_store.total_rows > 0

    def test_keep_meshes(self):
        db = build_streaming_database(
            2, seed=5, batch_size=2, voxel_resolution=RES, keep_meshes=True
        )
        assert all(rec.mesh is not None for rec in db)

    def test_batch_size_independent_features(self):
        one = build_streaming_database(4, seed=5, batch_size=1, voxel_resolution=RES)
        four = build_streaming_database(4, seed=5, batch_size=4, voxel_resolution=RES)
        for fname in one.matrix_store.columns():
            assert (
                one.feature_view(fname).matrix.tobytes()
                == four.feature_view(fname).matrix.tobytes()
            )


class TestSynthetic:
    def test_batches_cover_and_shape(self):
        batches = list(synthetic_vector_batches(250, seed=2, batch_size=100))
        assert [len(n) for n, _, _ in batches] == [100, 100, 50]
        names, groups, features = batches[0]
        assert names[0] == "synthetic_0000000"
        assert groups[0] == "g0000" and groups[64] == "g0000"
        for fname, dim in SYNTHETIC_FEATURE_DIMS.items():
            assert features[fname].shape == (100, dim)
            assert features[fname].dtype == np.float32

    def test_deterministic(self):
        a = list(synthetic_vector_batches(150, seed=2, batch_size=64))
        b = list(synthetic_vector_batches(150, seed=2, batch_size=64))
        for (_, _, fa), (_, _, fb) in zip(a, b):
            for fname in fa:
                assert np.array_equal(fa[fname], fb[fname])

    def test_members_cluster_around_their_center(self):
        db = build_synthetic_database(640, seed=4, batch_size=256, n_groups=8)
        engine = SearchEngine(db)
        sid = db.ids()[0]
        hits = engine.search_knn(
            sid, "principal_moments", k=8, use_index=False
        )
        same_group = sum(
            1 for h in hits if db.get(h.shape_id).group == db.get(sid).group
        )
        assert same_group >= 6  # 0.15 sigma noise keeps clusters tight

    def test_bulk_build_then_index_rebuild(self):
        db = build_synthetic_database(300, seed=4, batch_size=128)
        assert len(db) == 300
        assert db.matrix_store.total_rows == 300 * len(SYNTHETIC_FEATURE_DIMS)
        engine = SearchEngine(db)
        q = db.get(db.ids()[7]).features["eigenvalues"]
        linear = engine.search_knn(
            q, "eigenvalues", k=6, exclude_query=False, use_index=False
        )
        db.rebuild_indexes()
        indexed = engine.search_knn(
            q, "eigenvalues", k=6, exclude_query=False, use_index=True
        )
        assert [r.shape_id for r in linear] == [r.shape_id for r in indexed]
        for a, b in zip(linear, indexed):
            assert a.distance == pytest.approx(b.distance, abs=0.0)

    def test_custom_dims(self):
        db = build_synthetic_database(
            50, seed=1, batch_size=25, feature_dims={"only": 2}
        )
        assert db.matrix_store.columns() == ["only"]
        assert db.feature_view("only").matrix.shape == (50, 2)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            list(synthetic_vector_batches(-1))
        with pytest.raises(ValueError):
            list(synthetic_vector_batches(5, batch_size=0))
        with pytest.raises(ValueError):
            list(synthetic_vector_batches(5, n_groups=0))
