"""The ThreeDESS facade and its configuration."""

import numpy as np
import pytest

from repro import SystemConfig, ThreeDESS
from repro.geometry import box, cylinder, torus
from repro.search.api import SearchRequest


@pytest.fixture
def system():
    cfg = SystemConfig(voxel_resolution=12)
    sys3d = ThreeDESS(cfg)
    sys3d.insert(box((2, 3, 4)), name="b1", group="boxes")
    sys3d.insert(box((2.1, 3.1, 3.9)), name="b2", group="boxes")
    sys3d.insert(box((1.9, 2.8, 4.2)), name="b3", group="boxes")
    sys3d.insert(cylinder(1, 4, 16), name="c1", group="cyls")
    sys3d.insert(cylinder(1.05, 4.2, 16), name="c2", group="cyls")
    sys3d.insert(torus(2, 0.5, 16, 8), name="noise")
    return sys3d


class TestConfig:
    def test_defaults_valid(self):
        SystemConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"feature_names": []},
            {"voxel_resolution": 1},
            {"target_volume": 0.0},
            {"index_max_entries": 1},
            {"browse_branching": 1},
            {"browse_leaf_size": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            SystemConfig(**kwargs).validate()


class TestFacade:
    def test_len(self, system):
        assert len(system) == 6

    def test_search_knn_by_id(self, system):
        hits = system.search(SearchRequest(query=1, mode="knn", k=2)).hits
        assert {h.shape_id for h in hits} == {2, 3}

    def test_search_knn_by_mesh(self, system):
        hits = system.search(
            SearchRequest(query=box((2, 3, 4)), mode="knn", k=2)
        ).hits
        assert all(h.group == "boxes" for h in hits)

    def test_search_threshold(self, system):
        hits = system.search(
            SearchRequest(query=1, mode="threshold", threshold=0.0)
        ).hits
        assert len(hits) == 5

    def test_search_multi_step_default_plan(self, system):
        hits = system.search(SearchRequest(query=1, mode="multi_step")).hits
        assert len(hits) <= 10

    def test_search_multi_step_custom_plan(self, system):
        hits = system.search(
            SearchRequest(
                query=1,
                mode="multi_step",
                steps=(("principal_moments", 4), ("geometric_params", 2)),
            )
        ).hits
        assert len(hits) == 2

    def test_legacy_facade_methods_removed(self, system):
        # Removed after the PR-5 deprecation cycle; docs/API.md records
        # the SearchRequest equivalents.
        for name in ("query_by_example", "query_by_threshold", "multi_step"):
            assert not hasattr(system, name)

    def test_insert_file(self, system, tmp_path):
        from repro.geometry import save_mesh

        path = tmp_path / "part.off"
        save_mesh(box((2, 3, 4.1)), path)
        new_id = system.insert_file(path, group="boxes")
        assert new_id == 7
        assert system.database.get(new_id).group == "boxes"

    def test_insert_invalidates_similarity_cache(self, system):
        m1 = system.engine.measure("principal_moments")
        system.insert(box((5, 5, 5)))
        assert system.engine.measure("principal_moments") is not m1


class TestBrowsing:
    def test_hierarchy_covers_database(self, system):
        root = system.browse_hierarchy()
        assert sorted(root.member_ids) == system.database.ids()

    def test_hierarchy_cached_per_feature(self, system):
        a = system.browse_hierarchy("principal_moments")
        assert system.browse_hierarchy("principal_moments") is a
        b = system.browse_hierarchy("geometric_params")
        assert b is not a

    def test_sample_shapes_are_representatives(self, system):
        samples = system.sample_shapes()
        assert samples
        assert set(samples) <= set(system.database.ids())

    def test_feedback_session(self, system):
        session = system.feedback_session(1, k=3)
        results = session.search()
        assert len(results) == 3


class TestPersistence:
    def test_save_load_roundtrip(self, system, tmp_path):
        system.save(tmp_path / "db")
        back = ThreeDESS.load(tmp_path / "db", config=SystemConfig(voxel_resolution=12))
        assert len(back) == len(system)
        request = SearchRequest(query=1, mode="knn", k=3)
        hits_a = [h.shape_id for h in system.search(request).hits]
        hits_b = [h.shape_id for h in back.search(request).hits]
        assert hits_a == hits_b

    def test_load_without_meshes_queries_by_id(self, system, tmp_path):
        system.save(tmp_path / "db")
        back = ThreeDESS.load(
            tmp_path / "db",
            config=SystemConfig(voxel_resolution=12),
            load_meshes=False,
        )
        response = back.search(SearchRequest(query=1, mode="knn", k=1))
        assert response.hits[0].shape_id in {2, 3}


class TestFeatureCache:
    def test_cache_enabled_dedupes_extraction(self):
        from repro import SystemConfig, ThreeDESS
        from repro.features import CachingPipeline

        sys3d = ThreeDESS(SystemConfig(voxel_resolution=10, feature_cache=True))
        assert isinstance(sys3d.database.pipeline, CachingPipeline)
        sys3d.insert(box((2, 3, 4)))
        sys3d.insert(box((2, 3, 4)))
        assert sys3d.database.pipeline.hits == 1

    def test_cache_size_validated(self):
        from repro import SystemConfig

        with pytest.raises(ValueError):
            SystemConfig(feature_cache_entries=0).validate()
