"""Exact mesh moments and voxel moments against analytic values."""

import numpy as np
import pytest

from repro.geometry import box, cylinder, translate, uv_sphere
from repro.moments import (
    central_moments_up_to,
    mesh_moment,
    mesh_moments,
    mesh_moments_up_to,
    moment_keys_up_to,
    second_moment_matrix,
    voxel_centroid,
    voxel_moment,
    voxel_moments_up_to,
)


class TestMeshMoments:
    def test_volume_is_m000(self, asym_box):
        assert mesh_moment(asym_box, 0, 0, 0) == pytest.approx(48.0)

    def test_first_moments_vanish_when_centered(self, asym_box):
        m = mesh_moments(asym_box, [(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        for v in m.values():
            assert v == pytest.approx(0.0, abs=1e-10)

    def test_first_moment_of_translated_box(self, asym_box):
        moved = translate(asym_box, [2, 0, 0])
        assert mesh_moment(moved, 1, 0, 0) == pytest.approx(2 * 48.0)

    def test_second_moments_of_box(self):
        # Box w x h x d centered at origin: m200 = V w^2 / 12.
        b = box((2.0, 4.0, 6.0))
        m = mesh_moments_up_to(b, 2)
        vol = 48.0
        assert m[(2, 0, 0)] == pytest.approx(vol * 4 / 12)
        assert m[(0, 2, 0)] == pytest.approx(vol * 16 / 12)
        assert m[(0, 0, 2)] == pytest.approx(vol * 36 / 12)
        assert m[(1, 1, 0)] == pytest.approx(0.0, abs=1e-10)

    def test_fourth_order_moment_of_box(self):
        # m400 of box: V * w^4 / 80.
        b = box((2.0, 2.0, 2.0))
        assert mesh_moment(b, 4, 0, 0) == pytest.approx(8.0 * 16 / 80)

    def test_mixed_third_order_translated(self):
        # m111 of a unit cube with corner at origin: integral over [0,1]^3
        # of xyz = 1/8.
        b = box((1.0, 1.0, 1.0), center=(0.5, 0.5, 0.5))
        assert mesh_moment(b, 1, 1, 1) == pytest.approx(1.0 / 8.0)

    def test_sphere_second_moment(self):
        # m200 of a ball of radius R: (4/15) pi R^5; coarse mesh -> loose tol.
        s = uv_sphere(1.0, 32, 64)
        assert mesh_moment(s, 2, 0, 0) == pytest.approx(4 * np.pi / 15, rel=1e-2)

    def test_cylinder_axial_moment(self):
        # m002 for cylinder base at z=0, height h: V h^2 / 3.
        c = cylinder(1.0, 2.0, 128)
        vol = mesh_moment(c, 0, 0, 0)
        assert mesh_moment(c, 0, 0, 2) == pytest.approx(vol * 4 / 3, rel=1e-6)

    def test_negative_key_rejected(self, unit_box):
        with pytest.raises(ValueError):
            mesh_moments(unit_box, [(-1, 0, 0)])

    def test_moment_keys_up_to_counts(self):
        assert len(moment_keys_up_to(0)) == 1
        assert len(moment_keys_up_to(1)) == 4
        assert len(moment_keys_up_to(2)) == 10
        assert len(moment_keys_up_to(3)) == 20

    def test_up_to_negative_order_rejected(self, unit_box):
        with pytest.raises(ValueError):
            mesh_moments_up_to(unit_box, -1)


class TestCentralMoments:
    def test_translation_invariance(self, asym_box):
        base = central_moments_up_to(asym_box, 2)
        moved = central_moments_up_to(translate(asym_box, [5, -3, 2]), 2)
        for key in base:
            assert moved[key] == pytest.approx(base[key], abs=1e-8)

    def test_zero_volume_rejected(self):
        from repro.geometry import TriangleMesh

        tri = TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        with pytest.raises(ValueError):
            central_moments_up_to(tri, 2)

    def test_second_moment_matrix_symmetry(self, asym_box):
        mat = second_moment_matrix(central_moments_up_to(asym_box, 2))
        assert np.allclose(mat, mat.T)
        assert np.all(np.linalg.eigvalsh(mat) > 0)


class TestVoxelMoments:
    def test_m000_counts_voxels(self):
        occ = np.zeros((4, 4, 4), dtype=bool)
        occ[1:3, 1:3, 1:3] = True
        assert voxel_moment(occ, 0, 0, 0) == pytest.approx(8.0)

    def test_spacing_scales_volume(self):
        occ = np.ones((2, 2, 2), dtype=bool)
        assert voxel_moment(occ, 0, 0, 0, spacing=0.5) == pytest.approx(1.0)

    def test_centroid(self):
        occ = np.zeros((5, 5, 5), dtype=bool)
        occ[0, 0, 0] = True
        assert np.allclose(voxel_centroid(occ), [0.5, 0.5, 0.5])

    def test_centroid_with_origin(self):
        occ = np.ones((2, 2, 2), dtype=bool)
        c = voxel_centroid(occ, origin=(10, 0, 0))
        assert np.allclose(c, [11, 1, 1])

    def test_empty_grid_moments_zero(self):
        occ = np.zeros((3, 3, 3), dtype=bool)
        m = voxel_moments_up_to(occ, 2)
        assert all(v == 0.0 for v in m.values())

    def test_empty_grid_centroid_raises(self):
        with pytest.raises(ValueError):
            voxel_centroid(np.zeros((2, 2, 2), dtype=bool))

    def test_matches_mesh_moments_coarsely(self, asym_box):
        from repro.voxel import voxelize

        grid = voxelize(asym_box, resolution=32)
        got = voxel_moment(grid.occupancy, 0, 0, 0, origin=grid.origin, spacing=grid.spacing)
        assert got == pytest.approx(48.0, rel=0.25)

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            voxel_moment(np.ones((2, 2)), 0, 0, 0)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            voxel_moment(np.ones((2, 2, 2)), -1, 0, 0)
