"""Pose normalization against the paper's criteria (Eq. 3.2-3.4)."""

import numpy as np
import pytest

from repro.geometry import (
    box,
    extrude_polygon,
    random_rotation,
    rotate,
    scale,
    translate,
    volume,
)
from repro.moments import central_moments_up_to, normalize, principal_axes


@pytest.fixture
def bracket():
    return extrude_polygon(
        [[0, 0], [6, 0], [6, 1], [1, 1], [1, 4], [0, 4]], 1.2, name="bracket"
    )


class TestCriteria:
    def test_translation_criterion(self, bracket):
        res = normalize(bracket)
        central = central_moments_up_to(res.mesh, 1)
        for key in [(1, 0, 0), (0, 1, 0), (0, 0, 1)]:
            assert central[key] == pytest.approx(0.0, abs=1e-9)

    def test_scale_criterion(self, bracket):
        res = normalize(bracket, target_volume=2.5)
        assert volume(res.mesh) == pytest.approx(2.5)

    def test_orientation_criterion(self, bracket):
        res = normalize(bracket)
        central = central_moments_up_to(res.mesh, 2)
        for key in [(1, 1, 0), (1, 0, 1), (0, 1, 1)]:
            assert central[key] == pytest.approx(0.0, abs=1e-9)

    def test_principal_moment_ordering(self, bracket):
        res = normalize(bracket)
        central = central_moments_up_to(res.mesh, 2)
        assert central[(2, 0, 0)] >= central[(0, 2, 0)] >= central[(0, 0, 2)]

    def test_positive_half_space_rule(self, bracket):
        res = normalize(bracket)
        verts = res.mesh.vertices
        assert (verts.max(axis=0) >= -verts.min(axis=0) - 1e-9).all()


class TestInvariance:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_canonical_form_invariant_to_rigid_motion(self, bracket, seed):
        rng = np.random.default_rng(seed)
        res_base = normalize(bracket)
        moved = translate(
            scale(rotate(bracket, random_rotation(rng)), rng.uniform(0.5, 3.0)),
            rng.uniform(-10, 10, 3),
        )
        res_moved = normalize(moved)
        # Canonical second moments must agree.
        a = central_moments_up_to(res_base.mesh, 2)
        b = central_moments_up_to(res_moved.mesh, 2)
        for key in [(2, 0, 0), (0, 2, 0), (0, 0, 2)]:
            assert b[key] == pytest.approx(a[key], rel=1e-6, abs=1e-12)

    def test_scale_factor_tracks_volume(self, bracket):
        res = normalize(bracket, target_volume=1.0)
        assert res.scale_factor == pytest.approx(
            (1.0 / volume(bracket)) ** (1 / 3)
        )

    def test_rotation_matrix_is_orthonormal(self, bracket):
        res = normalize(bracket)
        assert np.allclose(res.rotation @ res.rotation.T, np.eye(3), atol=1e-9)

    def test_translation_matches_centroid(self, bracket):
        from repro.geometry import centroid

        res = normalize(bracket)
        assert np.allclose(res.translation, centroid(bracket))


class TestOptions:
    def test_no_reflection_keeps_proper_rotation(self, bracket):
        res = normalize(bracket, allow_reflection=False)
        assert np.linalg.det(res.rotation) == pytest.approx(1.0)
        assert not res.reflected

    def test_bad_target_volume(self, bracket):
        with pytest.raises(ValueError):
            normalize(bracket, target_volume=0.0)

    def test_zero_volume_rejected(self):
        from repro.geometry import TriangleMesh

        tri = TriangleMesh([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        with pytest.raises(ValueError):
            normalize(tri)

    def test_principal_axes_descending(self, bracket):
        eigvals, axes = principal_axes(bracket)
        assert eigvals[0] >= eigvals[1] >= eigvals[2]
        assert np.allclose(axes @ axes.T, np.eye(3), atol=1e-9)

    def test_normalized_mesh_outward_oriented(self, bracket, rng):
        from repro.geometry import signed_volume

        moved = rotate(bracket, random_rotation(rng))
        res = normalize(moved)
        assert signed_volume(res.mesh) > 0
