"""Command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.geometry import box, save_mesh


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig4"])
        assert args.name == "fig4"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_build_db_defaults(self):
        args = build_parser().parse_args(["build-db", "/tmp/x"])
        assert args.seed == 42
        assert args.resolution == 24
        assert args.workers == 0
        assert args.cache_dir is None

    def test_build_db_workers_and_cache(self):
        args = build_parser().parse_args(
            ["build-db", "/tmp/x", "--workers", "4", "--cache-dir", "/tmp/fc"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/fc"

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.resolution == 32
        assert args.workers == "1,2,4"
        assert not args.quick
        args = build_parser().parse_args(["bench", "--quick", "--output", "b.json"])
        assert args.quick
        assert args.output == "b.json"


class TestCommands:
    def test_experiment_fig4(self, capsys, eval_db):
        # eval_db fixture guarantees the cache exists, keeping this fast.
        code = main(["experiment", "fig4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FIG4" in out
        assert "noise shapes: 27" in out

    def test_build_query_browse_roundtrip(self, tmp_path, capsys, monkeypatch):
        # A tiny corpus via a patched GROUP_SIZES would complicate things;
        # instead build a minimal DB by hand and exercise query/browse.
        from repro import SystemConfig, ThreeDESS

        sys3d = ThreeDESS(SystemConfig(voxel_resolution=10))
        sys3d.insert(box((2, 3, 4)), name="b1", group="boxes")
        sys3d.insert(box((2.2, 3.1, 3.8)), name="b2", group="boxes")
        sys3d.insert(box((5, 5, 1)), name="plate")
        sys3d.save(tmp_path / "db")

        mesh_path = tmp_path / "query.off"
        save_mesh(box((2, 3, 4)), mesh_path)

        code = main(["query", str(tmp_path / "db"), str(mesh_path), "-k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "b1" in out

        code = main(["browse", str(tmp_path / "db")])
        out = capsys.readouterr().out
        assert code == 0
        assert "shapes]" in out

    def test_render_mesh_file_and_db_shape(self, tmp_path, capsys):
        from repro import SystemConfig, ThreeDESS

        mesh_path = tmp_path / "part.off"
        save_mesh(box((2, 3, 4)), mesh_path)
        out_svg = tmp_path / "part.svg"
        assert main(["render", str(mesh_path), str(out_svg)]) == 0
        assert out_svg.read_text().startswith("<svg")

        sys3d = ThreeDESS(SystemConfig(voxel_resolution=10))
        sys3d.insert(box((2, 3, 4)), name="b1")
        sys3d.save(tmp_path / "db")
        out_ppm = tmp_path / "b1.ppm"
        assert main(["render", str(tmp_path / "db"), str(out_ppm), "--id", "1"]) == 0
        assert out_ppm.read_bytes().startswith(b"P6")
        capsys.readouterr()

    def test_sketch_query(self, tmp_path, capsys):
        import numpy as np

        from repro import SystemConfig, ThreeDESS
        from repro.geometry import cylinder
        from repro.viewer import save_ppm

        cfg = SystemConfig(
            feature_names=["view_hu"], voxel_resolution=10
        )
        sys3d = ThreeDESS(cfg)
        sys3d.insert(box((4, 3, 1)), name="plate")
        sys3d.insert(cylinder(1, 5, 16), name="rod")
        sys3d.save(tmp_path / "db")

        drawing = np.zeros((64, 64, 3), dtype=np.uint8)
        drawing[20:44, 12:52] = 255  # white rectangle sketch
        save_ppm(drawing, tmp_path / "sketch.ppm")

        code = main(
            ["sketch", str(tmp_path / "db"), str(tmp_path / "sketch.ppm"), "-k", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "plate" in out

    def test_sketch_requires_view_features(self, tmp_path, capsys):
        import numpy as np

        from repro import SystemConfig, ThreeDESS
        from repro.viewer import save_ppm

        sys3d = ThreeDESS(SystemConfig(voxel_resolution=10))
        sys3d.insert(box((1, 2, 3)), name="b")
        sys3d.save(tmp_path / "db")
        drawing = np.zeros((16, 16, 3), dtype=np.uint8)
        save_ppm(drawing, tmp_path / "s.ppm")
        code = main(["sketch", str(tmp_path / "db"), str(tmp_path / "s.ppm")])
        out = capsys.readouterr().out
        assert code == 2
        assert "view_hu" in out

    def test_bench_writes_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--resolution", "8",
                "--shapes", "3",
                "--workers", "1",
                "--repeats", "1",
                "--output", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "thinning" in out and "ingestion" in out
        report = json.loads(out_path.read_text())
        assert report["thinning"]["all_identical"]
        assert report["params"]["resolution"] == 8

    def test_build_db_parallel_with_cache(self, tmp_path, capsys, monkeypatch):
        # Shrink the corpus so the CLI path stays fast.
        from repro.datasets import generator

        monkeypatch.setattr(
            generator, "GROUP_SIZES", {"l_bracket": 2, "block": 2}
        )
        monkeypatch.setattr(
            generator, "make_noise_shapes", lambda rng, count: []
        )
        code = main(
            [
                "build-db",
                str(tmp_path / "db"),
                "--resolution", "8",
                "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "built 4 shapes" in out and "2 workers" in out
        cached = [p.name for p in (tmp_path / "cache").iterdir()]
        assert any(name.endswith(".npz") for name in cached)
