"""Spherical-harmonics descriptor."""

import numpy as np
import pytest

from repro.descriptors import (
    shell_harmonic_energies,
    spherical_harmonics_descriptor,
)
from repro.geometry import box, cylinder, random_rotation, rotate, uv_sphere
from repro.moments import normalize
from repro.voxel import VoxelGrid, voxelize


@pytest.fixture(scope="module")
def box_grid():
    return voxelize(box((2, 3, 4)), resolution=20)


class TestEnergies:
    def test_shape(self, box_grid):
        energies = shell_harmonic_energies(box_grid, n_shells=5, max_degree=4)
        assert energies.shape == (5, 5)
        assert (energies >= 0).all()

    def test_empty_grid_zero(self):
        grid = VoxelGrid(np.zeros((4, 4, 4), dtype=bool))
        assert shell_harmonic_energies(grid).sum() == 0.0

    def test_single_voxel(self):
        occ = np.zeros((5, 5, 5), dtype=bool)
        occ[2, 2, 2] = True
        energies = shell_harmonic_energies(VoxelGrid(occ))
        assert energies[0, 0] == pytest.approx(1.0)

    def test_validation(self, box_grid):
        with pytest.raises(ValueError):
            shell_harmonic_energies(box_grid, n_shells=0)
        with pytest.raises(ValueError):
            shell_harmonic_energies(box_grid, max_degree=-1)

    def test_sphere_energy_concentrates_at_degree_zero(self):
        grid = voxelize(uv_sphere(1.0, 16, 32), resolution=20)
        energies = shell_harmonic_energies(grid, n_shells=4, max_degree=4)
        per_degree = energies.sum(axis=0)
        assert per_degree[0] > per_degree[1:].sum()


class TestDescriptor:
    def test_normalized(self, box_grid):
        vec = spherical_harmonics_descriptor(box_grid)
        assert vec.shape == (36,)
        assert vec.sum() == pytest.approx(1.0)

    def test_rotation_robustness(self, rng):
        mesh = normalize(box((2, 3, 5))).mesh
        base = spherical_harmonics_descriptor(voxelize(mesh, resolution=20))
        moved = spherical_harmonics_descriptor(
            voxelize(rotate(mesh, random_rotation(rng)), resolution=20)
        )
        other = spherical_harmonics_descriptor(
            voxelize(cylinder(1, 2, 24), resolution=20)
        )
        drift = np.abs(base - moved).sum()
        contrast = np.abs(base - other).sum()
        assert drift < contrast / 2

    def test_registered_extractor(self, l_bracket):
        from repro.features import FeaturePipeline

        pipe = FeaturePipeline(
            feature_names=["spherical_harmonics"], voxel_resolution=16
        )
        vec = pipe.extract_one(l_bracket, "spherical_harmonics")
        assert vec.shape == (36,)
        assert np.isfinite(vec).all()
