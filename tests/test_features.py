"""Feature extractors, registry, and the shared-context pipeline."""

import numpy as np
import pytest

from repro.features import (
    EIGENVALUES,
    GEOMETRIC_PARAMS,
    MOMENT_INVARIANTS,
    PAPER_FEATURES,
    PRINCIPAL_MOMENTS,
    EigenvaluesExtractor,
    ExtractionContext,
    FeatureError,
    FeaturePipeline,
    available_features,
    create_extractor,
    register_extractor,
)
from repro.geometry import box, extrude_polygon, random_rotation, rotate, translate


@pytest.fixture
def bracket():
    return extrude_polygon(
        [[0, 0], [6, 0], [6, 1], [1, 1], [1, 4], [0, 4]], 1.2, name="bracket"
    )


class TestRegistry:
    def test_paper_features_present(self):
        assert set(PAPER_FEATURES) <= set(available_features())
        assert len(PAPER_FEATURES) == 4

    def test_create_each(self):
        for name in available_features():
            ext = create_extractor(name)
            assert ext.name == name
            assert ext.dim >= 1

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            create_extractor("fourier")

    def test_register_custom(self, bracket):
        class Dummy(EigenvaluesExtractor):
            name = "dummy_spec"

        register_extractor("dummy_spec", Dummy)
        pipe = FeaturePipeline(feature_names=["dummy_spec"], voxel_resolution=10)
        vec = pipe.extract_one(bracket, "dummy_spec")
        assert vec.shape == (10,)


class TestPipeline:
    def test_extracts_all_paper_features(self, bracket):
        pipe = FeaturePipeline(voxel_resolution=12)
        fv = pipe.extract(bracket)
        assert set(fv) == set(PAPER_FEATURES)
        assert fv[MOMENT_INVARIANTS].shape == (3,)
        assert fv[GEOMETRIC_PARAMS].shape == (5,)
        assert fv[PRINCIPAL_MOMENTS].shape == (3,)
        assert fv[EIGENVALUES].shape == (10,)

    def test_dimensions_table(self):
        pipe = FeaturePipeline(voxel_resolution=12)
        dims = pipe.dimensions()
        assert dims[GEOMETRIC_PARAMS] == 5

    def test_subset_of_features(self, bracket):
        pipe = FeaturePipeline(feature_names=[PRINCIPAL_MOMENTS])
        fv = pipe.extract(bracket)
        assert list(fv) == [PRINCIPAL_MOMENTS]

    def test_extract_one_unknown(self, bracket):
        pipe = FeaturePipeline(feature_names=[PRINCIPAL_MOMENTS])
        with pytest.raises(KeyError):
            pipe.extract_one(bracket, EIGENVALUES)

    def test_empty_feature_list_rejected(self):
        with pytest.raises(ValueError):
            FeaturePipeline(feature_names=[])

    def test_context_caches_intermediates(self, bracket):
        ctx = ExtractionContext(bracket, voxel_resolution=12)
        assert ctx.normalization is ctx.normalization
        assert ctx.voxels is ctx.voxels
        assert ctx.skeleton is ctx.skeleton
        assert ctx.skeletal_graph is ctx.skeletal_graph

    def test_all_features_finite(self, bracket):
        pipe = FeaturePipeline(voxel_resolution=12)
        for vec in pipe.extract(bracket).values():
            assert np.isfinite(vec).all()


class TestInvarianceOfStoredFeatures:
    @pytest.mark.parametrize("name", [MOMENT_INVARIANTS, PRINCIPAL_MOMENTS])
    def test_rigid_invariance(self, bracket, rng, name):
        pipe = FeaturePipeline(feature_names=[name], voxel_resolution=12)
        base = pipe.extract_one(bracket, name)
        moved = translate(rotate(bracket, random_rotation(rng)), [3, -2, 5])
        got = pipe.extract_one(moved, name)
        assert np.allclose(got, base, rtol=1e-6, atol=1e-10)

    def test_geometric_params_translation_invariance(self, bracket):
        pipe = FeaturePipeline(feature_names=[GEOMETRIC_PARAMS], voxel_resolution=12)
        base = pipe.extract_one(bracket, GEOMETRIC_PARAMS)
        moved = translate(bracket, [10, 10, 10])
        assert np.allclose(pipe.extract_one(moved, GEOMETRIC_PARAMS), base)

    def test_eigenvalues_roughly_pose_stable(self, bracket, rng):
        # Thinning is not perfectly rotation invariant (paper, Sec. 3.3);
        # the graph spectrum should still usually match for a rigid move.
        pipe = FeaturePipeline(feature_names=[EIGENVALUES], voxel_resolution=16)
        base = pipe.extract_one(bracket, EIGENVALUES)
        moved = translate(bracket, [5, 5, 5])
        assert np.allclose(pipe.extract_one(moved, EIGENVALUES), base, atol=1e-8)


class TestValidationWrapper:
    def test_dim_mismatch_caught(self, bracket):
        class Broken(EigenvaluesExtractor):
            name = "broken"

            def extract(self, context):
                return np.zeros(3)  # wrong length

        ext = Broken(dim=10)
        ctx = ExtractionContext(bracket, voxel_resolution=10)
        with pytest.raises(FeatureError, match="expected shape"):
            ext(ctx)

    def test_nonfinite_caught(self, bracket):
        class Nan(EigenvaluesExtractor):
            name = "nan"

            def extract(self, context):
                out = np.zeros(self.dim)
                out[0] = np.nan
                return out

        ext = Nan(dim=4)
        ctx = ExtractionContext(bracket, voxel_resolution=10)
        with pytest.raises(FeatureError, match="non-finite"):
            ext(ctx)
