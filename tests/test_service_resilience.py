"""Wire-level resilience: client retries, circuit breaking, graceful
server drain, idempotent reloads, and the cache-warmup job.

The integration tests drive a real :class:`QueryServer` through the
chaos layer (:mod:`repro.robust.chaos`): injected request faults model a
melting-down server, and every scenario is deterministic from the plan
seed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from random import Random

import pytest

from repro.core.config import SystemConfig
from repro.core.system import ThreeDESS
from repro.geometry import box, cylinder
from repro.jobs import JobQueue, JobRunner
from repro.obs import get_registry
from repro.robust import chaos
from repro.service import (
    STATE_DRAINING,
    STATE_HEALTHY,
    CircuitBreaker,
    CircuitOpenError,
    QueryServer,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
    SnapshotManager,
    WARM_CACHE,
    WarmCacheHandler,
    warm_system,
)

RES = 10


def small_config() -> SystemConfig:
    return SystemConfig(voxel_resolution=RES)


@pytest.fixture(scope="module")
def db_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("resilience") / "db"
    system = ThreeDESS(small_config())
    system.insert(box((2, 3, 4)), name="b1", group="boxes")
    system.insert(box((2.1, 3.1, 3.9)), name="b2", group="boxes")
    system.insert(box((1.9, 2.8, 4.2)), name="b3", group="boxes")
    system.insert(cylinder(1, 4, 16), name="c1", group="cyls")
    system.save(root)
    return root


@pytest.fixture
def server(db_dir):
    srv = QueryServer(SnapshotManager(db_dir, config=small_config()), port=0)
    srv.start()
    yield srv
    srv.stop()


# ----------------------------------------------------------------------
# RetryPolicy (unit)
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)

    def test_full_jitter_stays_under_exponential_cap(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=10.0)
        rng = Random(0)
        for attempt in range(6):
            for _ in range(50):
                d = policy.delay(attempt, rng)
                assert 0.0 <= d <= 0.1 * (2.0**attempt)

    def test_max_delay_caps_the_jitter(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=0.25)
        rng = Random(0)
        assert all(policy.delay(8, rng) <= 0.25 for _ in range(100))

    def test_retry_after_bumps_the_delay(self):
        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.01)
        assert policy.delay(0, Random(0), retry_after=1.5) == 1.5

    def test_seed_makes_jitter_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, seed=99)
        a = [policy.delay(i, Random(99)) for i in range(5)]
        b = [policy.delay(i, Random(99)) for i in range(5)]
        assert a == b


# ----------------------------------------------------------------------
# CircuitBreaker (unit, driven by a fake clock)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **kwargs):
        now = [0.0]
        defaults = dict(
            window=10,
            failure_threshold=0.5,
            min_samples=4,
            reset_timeout_s=5.0,
            clock=lambda: now[0],
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), now

    def test_stays_closed_below_min_samples(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_at_failure_threshold(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_after_reset_timeout_then_closes_on_success(self):
        breaker, now = self.make()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == "open"
        now[0] += 5.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the single probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, now = self.make()
        for _ in range(4):
            breaker.record_failure()
        now[0] += 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        # ... and the fresh open period starts from the probe failure.
        now[0] += 5.0
        assert breaker.state == "half-open"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)

    def test_client_fails_fast_when_open(self, server):
        breaker, now = self.make()
        for _ in range(4):
            breaker.record_failure()
        requests_before = get_registry().counter("service.requests").value
        client = ServiceClient(server.url, breaker=breaker)
        with pytest.raises(CircuitOpenError):
            client.health()
        # Failed fast: nothing touched the wire.
        assert get_registry().counter("service.requests").value == requests_before


# ----------------------------------------------------------------------
# Retry + breaker against a 30%-fault server (acceptance c)
# ----------------------------------------------------------------------
FAULTY_PLAN = {
    "seed": 42,
    "faults": [{"point": "service.request", "kind": "error", "rate": 0.3}],
}


class TestFaultyServer:
    def run_load(self, server, queries: int = 20):
        client = ServiceClient(
            server.url,
            timeout=30.0,
            retry=RetryPolicy(
                max_attempts=6,
                base_delay_s=0.001,
                max_delay_s=0.005,
                retry_statuses=(500, 502, 503),
                seed=7,
            ),
            breaker=CircuitBreaker(
                window=8, failure_threshold=0.9, min_samples=8,
                reset_timeout_s=0.01,
            ),
        )
        with chaos.active_plan(FAULTY_PLAN) as ctl:
            for _ in range(queries):
                response = client.search(shape_id=1, k=2)
                assert len(response["hits"]) >= 1
            injected = ctl.fired.get("service.request", 0)
            hits = ctl.hits.get("service.request", 0)
        client.close()
        return injected, hits, client.breaker.state

    def test_sustains_30_percent_faults_and_ends_closed(self, server):
        injected, hits, state = self.run_load(server)
        # Faults really flowed (~30% of hits) yet every query succeeded.
        assert injected >= 3
        assert hits >= 20
        assert state == "closed"

    def test_fault_schedule_is_deterministic_from_the_seed(self, server):
        first = self.run_load(server)
        second = self.run_load(server)
        assert first == second

    def test_unretried_faults_surface_as_500(self, server):
        client = ServiceClient(server.url)  # no retry policy
        plan = {"faults": [{"point": "service.request", "kind": "error",
                            "at": 1}]}
        with chaos.active_plan(plan):
            with pytest.raises(ServiceError) as err:
                client.search(shape_id=1, k=2)
        assert err.value.status == 500
        client.close()


# ----------------------------------------------------------------------
# Idempotent reloads (zero duplicate side effects)
# ----------------------------------------------------------------------
class TestIdempotentReload:
    def test_retried_reload_applies_exactly_once(self, server):
        """The response to the first reload dies on the wire *after* the
        snapshot swapped; the retry must replay the server's cached
        answer instead of swapping again."""
        client = ServiceClient(
            server.url,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.001,
                              retry_statuses=(500,), seed=3),
        )
        start_gen = client.health()["generation"]
        replays_before = get_registry().counter(
            "service.idempotent_replays"
        ).value
        plan = {"faults": [{"point": "service.response.write",
                            "kind": "error", "at": 1,
                            "exception": "BrokenPipeError"}]}
        with chaos.active_plan(plan):
            result = client.reload()
        assert result["generation"] == start_gen + 1
        assert client.health()["generation"] == start_gen + 1  # not +2
        assert (
            get_registry().counter("service.idempotent_replays").value
            == replays_before + 1
        )
        client.close()

    def test_distinct_reloads_use_distinct_keys(self, server):
        client = ServiceClient(server.url)
        gen_a = client.reload()["generation"]
        gen_b = client.reload()["generation"]
        assert gen_b == gen_a + 1  # no accidental replay across calls
        client.close()

    def test_idempotency_cache_is_bounded(self, server):
        for i in range(140):
            server.idempotent_store(f"key-{i}", {"i": i})
        assert server.idempotent_lookup("key-0") is None
        assert server.idempotent_lookup("key-139") == {"i": 139}


# ----------------------------------------------------------------------
# Timeout semantics: a timed-out connection is discarded, never retried
# ----------------------------------------------------------------------
class TestTimeoutDiscard:
    def test_timed_out_connection_is_closed_and_not_retried(
        self, server, monkeypatch
    ):
        system = server.snapshots.current.system
        original = system.search
        calls = []
        release = threading.Event()

        def slow_search(request, deadline=None):
            calls.append(1)
            release.wait(5.0)
            return original(request, deadline=deadline)

        monkeypatch.setattr(system, "search", slow_search)
        client = ServiceClient(
            server.url,
            timeout=0.3,
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.001,
                              retry_statuses=(500,)),
        )
        with pytest.raises(ServiceUnavailableError) as err:
            client.search(shape_id=1, k=2)
        assert err.value.timed_out
        # Not retried (the server may still be working on it) ...
        assert len(calls) == 1
        # ... and the poisoned keep-alive socket was discarded.
        assert client._conn is None
        release.set()
        monkeypatch.setattr(system, "search", original)
        assert client.search(shape_id=1, k=2)["hits"]
        client.close()


# ----------------------------------------------------------------------
# Health states and graceful drain (acceptance a)
# ----------------------------------------------------------------------
def raw_healthz(url: str) -> tuple:
    """(status, body) for GET /healthz, tolerating non-2xx statuses."""
    try:
        with urllib.request.urlopen(f"{url}/healthz", timeout=10.0) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode("utf-8"))


class TestDrain:
    def test_initial_state_is_healthy(self, server):
        assert server.state == STATE_HEALTHY
        status, body = raw_healthz(server.url)
        assert status == 200
        assert body["ok"] is True
        assert body["state"] == "healthy"

    def test_drain_waits_for_inflight_and_sheds_new_work(
        self, server, monkeypatch
    ):
        system = server.snapshots.current.system
        original = system.search
        release = threading.Event()

        def gated_search(request, deadline=None):
            release.wait(10.0)
            return original(request, deadline=deadline)

        monkeypatch.setattr(system, "search", gated_search)
        inflight_result = {}

        def inflight_call():
            client = ServiceClient(server.url, timeout=30.0)
            try:
                inflight_result["response"] = client.search(shape_id=1, k=2)
            finally:
                client.close()

        worker = threading.Thread(target=inflight_call, daemon=True)
        worker.start()
        deadline = time.monotonic() + 10.0
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.inflight == 1

        drain_result = {}
        drainer = threading.Thread(
            target=lambda: drain_result.update(
                clean=server.drain(deadline_s=10.0)
            ),
            daemon=True,
        )
        drainer.start()
        deadline = time.monotonic() + 10.0
        while not server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.state == STATE_DRAINING

        # Probes keep answering (503 + the draining state) ...
        status, body = raw_healthz(server.url)
        assert status == 503
        assert body["ok"] is False
        assert body["state"] == "draining"
        # ... while new work is shed with a retryable 503.
        shed_client = ServiceClient(server.url, timeout=10.0)
        with pytest.raises(ServiceError) as err:
            shed_client.search(shape_id=1, k=2)
        assert err.value.status == 503
        assert err.value.code == "service.draining"
        shed_client.close()

        # The admitted request still completes: zero dropped responses.
        release.set()
        worker.join(timeout=10.0)
        drainer.join(timeout=10.0)
        assert drain_result["clean"] is True
        assert inflight_result["response"]["hits"]

    def test_drain_deadline_expiry_reports_unclean(self, server, monkeypatch):
        system = server.snapshots.current.system
        original = system.search
        release = threading.Event()
        monkeypatch.setattr(
            system,
            "search",
            lambda request, deadline=None: (
                release.wait(10.0),
                original(request, deadline=deadline),
            )[1],
        )

        def stuck_call():
            client = ServiceClient(server.url, timeout=30.0)
            try:
                client.search(shape_id=1, k=2)
            except ServiceError:
                pass
            finally:
                client.close()

        worker = threading.Thread(target=stuck_call, daemon=True)
        worker.start()
        deadline = time.monotonic() + 10.0
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.drain(deadline_s=0.2) is False
        release.set()
        worker.join(timeout=10.0)

    def test_drain_is_idempotent(self, server):
        assert server.drain(deadline_s=1.0) is True
        assert server.drain(deadline_s=1.0) is True

    def test_drain_under_16_client_load_drops_nothing(
        self, db_dir, monkeypatch
    ):
        """Acceptance (a): 16 concurrent clients, drain mid-load — every
        admitted request completes, late arrivals get the retryable
        draining 503, nothing is dropped on the floor."""
        server = QueryServer(
            SnapshotManager(db_dir, config=small_config()),
            port=0,
            max_concurrent=16,
            queue_limit=64,
        )
        server.start()
        try:
            system = server.snapshots.current.system
            original = system.search
            monkeypatch.setattr(
                system,
                "search",
                lambda request, deadline=None: (
                    time.sleep(0.02),
                    original(request, deadline=deadline),
                )[1],
            )
            stop = threading.Event()
            outcomes = [[] for _ in range(16)]
            unexpected = []

            def load(slot):
                client = ServiceClient(server.url, timeout=30.0)
                try:
                    while not stop.is_set():
                        try:
                            response = client.search(shape_id=1, k=2)
                            outcomes[slot].append(
                                ("ok", len(response["hits"]))
                            )
                        except ServiceError as exc:
                            if exc.code == "service.draining":
                                outcomes[slot].append(("draining", 0))
                                return
                            if isinstance(exc, ServiceUnavailableError):
                                outcomes[slot].append(("down", 0))
                                return
                            raise
                # repro-lint: disable=RPL001 -- the assertion below
                except Exception as exc:
                    unexpected.append(exc)  # re-raised as a test failure
                finally:
                    client.close()

            workers = [
                threading.Thread(target=load, args=(slot,), daemon=True)
                for slot in range(16)
            ]
            for worker in workers:
                worker.start()
            deadline = time.monotonic() + 10.0
            while (
                sum(len(o) for o in outcomes) < 32
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            clean = server.drain(deadline_s=10.0)
            stop.set()
            for worker in workers:
                worker.join(timeout=10.0)
            assert not unexpected, unexpected
            assert clean is True
            flat = [kind for slots in outcomes for kind, _ in slots]
            assert flat.count("ok") >= 32  # real load was in flight
            # Every thread ended via success/shed — nothing dropped.
            for slots in outcomes:
                assert all(
                    kind in ("ok", "draining", "down") for kind, _ in slots
                )
        finally:
            server.stop()


# ----------------------------------------------------------------------
# SIGTERM end-to-end: the CLI drains and exits 0 (acceptance a)
# ----------------------------------------------------------------------
class TestSigterm:
    def test_serve_drains_on_sigterm_and_exits_zero(self, db_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        env.pop("REPRO_CHAOS", None)
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve",
             str(db_dir), "--port", "0", "--drain-deadline", "10"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd="/root/repo",
            env=env,
        )
        try:
            url = None
            deadline = time.monotonic() + 60.0
            lines = []
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                lines.append(line)
                if " on http://" in line:
                    url = line.rsplit(" on ", 1)[1].strip()
                    break
            assert url, f"server never came up: {''.join(lines)}"
            status, body = raw_healthz(url)
            assert status == 200 and body["state"] == "healthy"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60.0)
            assert proc.returncode == 0
            assert "drained; shutting down" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10.0)


# ----------------------------------------------------------------------
# Cache warmup (the warm-cache job type)
# ----------------------------------------------------------------------
class TestWarmup:
    def test_warm_system_touches_every_column(self, db_dir):
        system = ThreeDESS.load(db_dir, config=small_config(),
                                load_meshes=False)
        report = warm_system(system)
        assert report["columns"] == len(
            system.database.matrix_store.columns()
        )
        assert report["columns"] >= 1
        assert report["rows"] >= 4
        assert report["bytes"] > 0

    def test_warm_cache_job_runs_through_the_queue(self, db_dir, tmp_path):
        system = ThreeDESS.load(db_dir, config=small_config(),
                                load_meshes=False)
        with JobQueue(tmp_path / "jobs.jsonl") as queue:
            queue.enqueue(WARM_CACHE, {"generation": 1})
            report = JobRunner(
                queue, {WARM_CACHE: WarmCacheHandler(system)}
            ).run()
        assert report.executed == 1
        assert report.done

    def test_run_jobs_dispatches_warm_cache(self, db_dir, tmp_path):
        system = ThreeDESS.load(db_dir, config=small_config(),
                                load_meshes=False)
        with JobQueue(tmp_path / "jobs.jsonl") as queue:
            queue.enqueue(WARM_CACHE, {"generation": 1})
            report = system.run_jobs(queue)
        assert report.executed == 1

    def test_snapshot_manager_warms_before_serving(self, db_dir):
        manager = SnapshotManager(
            db_dir, config=small_config(), warm=True
        )
        snap = manager.current
        assert snap.generation == 1
        assert len(snap.system.database) == 4
