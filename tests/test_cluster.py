"""Clustering algorithms and the browse hierarchy."""

import numpy as np
import pytest

from repro.cluster import (
    SelfOrganizingMap,
    build_hierarchy,
    ga_cluster,
    inertia_of,
    kmeans,
)


@pytest.fixture
def blobs(rng):
    centers = np.array([[0, 0, 0], [6, 6, 6], [0, 6, 0]], dtype=float)
    data = np.vstack(
        [rng.normal(loc=c, scale=0.4, size=(15, 3)) for c in centers]
    )
    labels = np.repeat([0, 1, 2], 15)
    return data, labels


def cluster_purity(found, truth):
    """Fraction of points whose cluster is the majority cluster of their
    true group (permutation-free agreement measure)."""
    correct = 0
    for g in np.unique(truth):
        members = found[truth == g]
        values, counts = np.unique(members, return_counts=True)
        correct += counts.max()
    return correct / len(truth)


class TestKMeans:
    def test_separates_blobs(self, blobs, rng):
        data, truth = blobs
        result = kmeans(data, 3, rng=rng)
        assert cluster_purity(result.labels, truth) == 1.0

    def test_inertia_matches_helper(self, blobs, rng):
        data, _ = blobs
        result = kmeans(data, 3, rng=rng)
        assert result.inertia == pytest.approx(inertia_of(data, result.labels))

    def test_k_equals_one(self, blobs, rng):
        data, _ = blobs
        result = kmeans(data, 1, rng=rng)
        assert len(np.unique(result.labels)) == 1

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(5, 2))
        result = kmeans(data, 5, rng=rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_under_seed(self, blobs):
        data, _ = blobs
        a = kmeans(data, 3, rng=np.random.default_rng(1))
        b = kmeans(data, 3, rng=np.random.default_rng(1))
        assert np.array_equal(a.labels, b.labels)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 1)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), 6)

    def test_duplicate_points_handled(self, rng):
        data = np.zeros((10, 3))
        result = kmeans(data, 2, rng=rng)
        assert result.inertia == pytest.approx(0.0)


class TestSOM:
    def test_separates_blobs(self, blobs, rng):
        data, truth = blobs
        som = SelfOrganizingMap((2, 2), n_epochs=20)
        result = som.fit(data, rng=rng)
        assert cluster_purity(result.labels, truth) >= 0.9

    def test_weights_shape(self, blobs, rng):
        data, _ = blobs
        result = SelfOrganizingMap((3, 2), n_epochs=5).fit(data, rng=rng)
        assert result.weights.shape == (3, 2, 3)
        assert result.n_clusters() <= 6

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            SelfOrganizingMap((0, 2))
        with pytest.raises(ValueError):
            SelfOrganizingMap((2, 2)).fit(np.zeros((0, 3)), rng=rng)


class TestGA:
    def test_separates_blobs(self, blobs, rng):
        data, truth = blobs
        result = ga_cluster(data, 3, rng=rng, generations=15)
        assert cluster_purity(result.labels, truth) == 1.0

    def test_close_to_kmeans_quality(self, blobs, rng):
        data, _ = blobs
        km = kmeans(data, 3, rng=np.random.default_rng(0))
        ga = ga_cluster(data, 3, rng=np.random.default_rng(0), generations=15)
        assert ga.inertia <= km.inertia * 1.5

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ga_cluster(np.zeros((0, 2)), 1)
        with pytest.raises(ValueError):
            ga_cluster(rng.normal(size=(4, 2)), 9)


class TestHierarchy:
    def test_partition_property(self, blobs, rng):
        data, _ = blobs
        ids = list(range(100, 145))
        root = build_hierarchy(data, ids, branching=3, leaf_size=6, rng=rng)
        assert sorted(root.member_ids) == sorted(ids)
        # Children partition the parent everywhere in the tree.
        for node in root.walk():
            if node.children:
                combined = sorted(
                    i for child in node.children for i in child.member_ids
                )
                assert combined == sorted(node.member_ids)

    def test_leaves_cover_everything(self, blobs, rng):
        data, _ = blobs
        ids = list(range(45))
        root = build_hierarchy(data, ids, leaf_size=5, rng=rng)
        leaf_ids = sorted(i for leaf in root.leaves() for i in leaf.member_ids)
        assert leaf_ids == ids

    def test_representative_is_member(self, blobs, rng):
        data, _ = blobs
        root = build_hierarchy(data, list(range(45)), rng=rng)
        for node in root.walk():
            assert node.representative_id in node.member_ids

    def test_leaf_size_respected_on_separable_data(self, blobs, rng):
        data, _ = blobs
        root = build_hierarchy(
            data, list(range(45)), leaf_size=6, max_depth=12, rng=rng
        )
        index_of = {sid: row for row, sid in enumerate(range(45))}
        for leaf in root.leaves():
            rows = data[[index_of[i] for i in leaf.member_ids]]
            distinct = len(np.unique(rows, axis=0))
            assert leaf.size <= 6 or leaf.depth == 12 or distinct < 2

    def test_single_point(self, rng):
        root = build_hierarchy(np.zeros((1, 3)), [7], rng=rng)
        assert root.is_leaf
        assert root.representative_id == 7

    def test_identical_points_terminate(self, rng):
        root = build_hierarchy(np.zeros((20, 3)), list(range(20)), leaf_size=2, rng=rng)
        assert root.is_leaf  # indivisible: all points coincide

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            build_hierarchy(np.zeros((3, 2)), [1, 2], rng=rng)
        with pytest.raises(ValueError):
            build_hierarchy(np.zeros((0, 2)), [], rng=rng)
        with pytest.raises(ValueError):
            build_hierarchy(np.zeros((3, 2)), [1, 2, 3], branching=1, rng=rng)
