"""Mesh I/O: OFF, STL (ascii + binary), OBJ, format dispatch."""

import numpy as np
import pytest

from repro.geometry import (
    MeshError,
    box,
    load_mesh,
    load_obj,
    load_off,
    load_stl,
    save_mesh,
    save_obj,
    save_off,
    save_stl,
    supported_formats,
    volume,
)


@pytest.fixture
def sample(asym_box):
    return asym_box


class TestOFF:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "m.off"
        save_off(sample, path)
        back = load_off(path)
        assert back.n_vertices == sample.n_vertices
        assert volume(back) == pytest.approx(volume(sample))
        assert back.is_watertight()

    def test_name_from_filename(self, sample, tmp_path):
        path = tmp_path / "widget.off"
        save_off(sample, path)
        assert load_off(path).name == "widget"

    def test_polygon_faces_fan_triangulated(self, tmp_path):
        path = tmp_path / "quad.off"
        path.write_text(
            "OFF\n4 1 0\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n"
        )
        mesh = load_off(path)
        assert mesh.n_faces == 2

    def test_comments_and_missing_header(self, tmp_path):
        path = tmp_path / "bare.off"
        path.write_text("# comment\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 2\n")
        assert load_off(path).n_faces == 1

    def test_truncated_raises(self, tmp_path):
        path = tmp_path / "bad.off"
        path.write_text("OFF\n3 1 0\n0 0 0\n1 0 0\n")
        with pytest.raises(MeshError):
            load_off(path)

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "empty.off"
        path.write_text("")
        with pytest.raises(MeshError):
            load_off(path)


class TestSTL:
    def test_binary_roundtrip(self, sample, tmp_path):
        path = tmp_path / "m.stl"
        save_stl(sample, path, binary=True)
        back = load_stl(path)
        assert volume(back) == pytest.approx(volume(sample), rel=1e-5)
        assert back.is_watertight()  # welding restores topology

    def test_ascii_roundtrip(self, sample, tmp_path):
        path = tmp_path / "m.stl"
        save_stl(sample, path, binary=False)
        back = load_stl(path)
        assert volume(back) == pytest.approx(volume(sample))

    def test_ascii_detected_by_header(self, sample, tmp_path):
        path = tmp_path / "m.stl"
        save_stl(sample, path, binary=False)
        assert path.read_bytes().startswith(b"solid")
        assert load_stl(path).n_faces == sample.n_faces

    def test_truncated_binary_raises(self, tmp_path):
        path = tmp_path / "bad.stl"
        path.write_bytes(b"\0" * 60)
        with pytest.raises(MeshError):
            load_stl(path)

    def test_bad_ascii_vertex_count(self, tmp_path):
        path = tmp_path / "bad.stl"
        path.write_text("solid x\nvertex 0 0 0\nvertex 1 0 0\nendsolid x\n")
        with pytest.raises(MeshError):
            load_stl(path)


class TestOBJ:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "m.obj"
        save_obj(sample, path)
        back = load_obj(path)
        assert volume(back) == pytest.approx(volume(sample))

    def test_polygon_faces(self, tmp_path):
        path = tmp_path / "quad.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n")
        assert load_obj(path).n_faces == 2

    def test_negative_indices(self, tmp_path):
        path = tmp_path / "neg.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n")
        mesh = load_obj(path)
        assert mesh.faces.tolist() == [[0, 1, 2]]

    def test_slash_indices(self, tmp_path):
        path = tmp_path / "tex.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1 2/2 3/3\n")
        assert load_obj(path).n_faces == 1

    def test_zero_index_raises(self, tmp_path):
        path = tmp_path / "zero.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n")
        with pytest.raises(MeshError):
            load_obj(path)

    def test_short_face_raises(self, tmp_path):
        path = tmp_path / "short.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nf 1 2\n")
        with pytest.raises(MeshError):
            load_obj(path)


class TestDispatch:
    def test_supported_formats(self):
        assert set(supported_formats()) == {".off", ".stl", ".obj", ".ply"}

    @pytest.mark.parametrize("ext", [".off", ".stl", ".obj", ".ply"])
    def test_save_load_roundtrip(self, sample, tmp_path, ext):
        path = tmp_path / f"m{ext}"
        save_mesh(sample, path)
        assert volume(load_mesh(path)) == pytest.approx(volume(sample), rel=1e-5)

    def test_unknown_extension(self, sample, tmp_path):
        with pytest.raises(MeshError, match="unsupported"):
            save_mesh(sample, tmp_path / "m.step")
        with pytest.raises(MeshError, match="unsupported"):
            load_mesh(tmp_path / "m.step")

    def test_case_insensitive_extension(self, sample, tmp_path):
        path = tmp_path / "m.OFF"
        save_mesh(sample, path)
        assert load_mesh(path).n_faces == sample.n_faces


class TestPLY:
    @pytest.mark.parametrize("binary", [True, False])
    def test_roundtrip(self, sample, tmp_path, binary):
        from repro.geometry import load_ply, save_ply

        path = tmp_path / "m.ply"
        save_ply(sample, path, binary=binary)
        back = load_ply(path)
        assert back.n_vertices == sample.n_vertices
        assert volume(back) == pytest.approx(volume(sample))
        assert back.is_watertight()

    def test_quad_faces_triangulated(self, tmp_path):
        from repro.geometry import load_ply

        path = tmp_path / "quad.ply"
        path.write_text(
            "ply\nformat ascii 1.0\nelement vertex 4\n"
            "property float x\nproperty float y\nproperty float z\n"
            "element face 1\nproperty list uchar int vertex_indices\n"
            "end_header\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n"
        )
        assert load_ply(path).n_faces == 2

    def test_extra_vertex_properties_skipped(self, tmp_path):
        from repro.geometry import load_ply

        path = tmp_path / "extra.ply"
        path.write_text(
            "ply\nformat ascii 1.0\nelement vertex 3\n"
            "property float x\nproperty float y\nproperty float z\n"
            "property uchar red\n"
            "element face 1\nproperty list uchar int vertex_indices\n"
            "end_header\n0 0 0 255\n1 0 0 255\n0 1 0 255\n3 0 1 2\n"
        )
        mesh = load_ply(path)
        assert mesh.n_vertices == 3
        assert mesh.n_faces == 1

    def test_bad_magic_rejected(self, tmp_path):
        from repro.geometry import load_ply

        path = tmp_path / "bad.ply"
        path.write_bytes(b"nope\nend_header\n")
        with pytest.raises(MeshError):
            load_ply(path)

    def test_big_endian_rejected(self, tmp_path):
        from repro.geometry import load_ply

        path = tmp_path / "be.ply"
        path.write_bytes(
            b"ply\nformat binary_big_endian 1.0\nelement vertex 0\n"
            b"property float x\nproperty float y\nproperty float z\n"
            b"element face 0\nproperty list uchar int vertex_indices\n"
            b"end_header\n"
        )
        with pytest.raises(MeshError):
            load_ply(path)
