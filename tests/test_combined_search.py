"""Combined multi-feature similarity and cross-FV weight reconfiguration."""

import numpy as np
import pytest

from repro.db import ShapeDatabase
from repro.features import FeaturePipeline
from repro.geometry import box, cylinder, torus, tube
from repro.search import (
    CombinedFeedbackSession,
    CombinedSimilarity,
    SearchEngine,
    combined_search,
    reconfigure_feature_weights,
)


@pytest.fixture
def db():
    database = ShapeDatabase(FeaturePipeline(voxel_resolution=12))
    database.insert_mesh(box((2, 3, 4)), group="boxes")
    database.insert_mesh(box((2.1, 3.1, 3.9)), group="boxes")
    database.insert_mesh(box((1.9, 2.9, 4.1)), group="boxes")
    database.insert_mesh(cylinder(1, 4, 16), group="cyls")
    database.insert_mesh(cylinder(1.05, 4.2, 16), group="cyls")
    database.insert_mesh(torus(2, 0.5, 16, 8))
    database.insert_mesh(tube(2, 1, 1, 16))
    return database


@pytest.fixture
def engine(db):
    return SearchEngine(db)


FEATURES = ["principal_moments", "moment_invariants", "geometric_params"]


class TestCombinedSimilarity:
    def test_weights_normalized(self):
        combo = CombinedSimilarity(weights={"a": 2.0, "b": 2.0})
        assert combo.weights == {"a": 0.5, "b": 0.5}

    def test_uniform(self):
        combo = CombinedSimilarity.uniform(["a", "b", "c", "d"])
        assert all(w == pytest.approx(0.25) for w in combo.weights.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            CombinedSimilarity(weights={})
        with pytest.raises(ValueError):
            CombinedSimilarity(weights={"a": -1.0})
        with pytest.raises(ValueError):
            CombinedSimilarity(weights={"a": 0.0})


class TestCombinedSearch:
    def test_ranks_group_members_first(self, engine):
        combo = CombinedSimilarity.uniform(FEATURES)
        hits = combined_search(engine, 1, combo, k=2)
        assert {h.shape_id for h in hits} == {2, 3}

    def test_similarity_in_unit_interval_and_sorted(self, engine):
        combo = CombinedSimilarity.uniform(FEATURES)
        hits = combined_search(engine, 1, combo, k=6)
        sims = [h.similarity for h in hits]
        assert all(0.0 <= s <= 1.0 for s in sims)
        assert sims == sorted(sims, reverse=True)
        assert [h.rank for h in hits] == list(range(1, 7))

    def test_excludes_query(self, engine):
        combo = CombinedSimilarity.uniform(FEATURES)
        hits = combined_search(engine, 1, combo, k=10)
        assert all(h.shape_id != 1 for h in hits)

    def test_single_feature_combo_matches_knn_order(self, engine):
        combo = CombinedSimilarity(weights={"principal_moments": 1.0})
        combined = [h.shape_id for h in combined_search(engine, 1, combo, k=4)]
        plain = [h.shape_id for h in engine.search_knn(1, "principal_moments", k=4)]
        assert combined == plain

    def test_query_by_mesh(self, engine):
        combo = CombinedSimilarity.uniform(FEATURES)
        hits = combined_search(engine, box((2, 3, 4)), combo, k=2)
        assert all(h.group == "boxes" for h in hits)

    def test_k_validation(self, engine):
        combo = CombinedSimilarity.uniform(FEATURES)
        with pytest.raises(ValueError):
            combined_search(engine, 1, combo, k=0)

    def test_degenerate_weight_shifts_ranking(self, engine):
        # With all weight on geometric params the ordering may differ from
        # all weight on principal moments — verify weights actually matter.
        combo_a = CombinedSimilarity(weights={"principal_moments": 1.0})
        combo_b = CombinedSimilarity(weights={"geometric_params": 1.0})
        a = [h.shape_id for h in combined_search(engine, 6, combo_a, k=6)]
        b = [h.shape_id for h in combined_search(engine, 6, combo_b, k=6)]
        assert a != b or a == b  # orders are both valid; scores must differ
        sa = combined_search(engine, 6, combo_a, k=1)[0].similarity
        sb = combined_search(engine, 6, combo_b, k=1)[0].similarity
        assert sa != pytest.approx(sb)


class TestWeightReconfiguration:
    def test_discriminating_feature_gains_weight(self, engine):
        combo = CombinedSimilarity.uniform(FEATURES)
        new = reconfigure_feature_weights(
            engine, combo, 1, relevant_ids=[2, 3], irrelevant_ids=[6, 7]
        )
        assert sum(new.weights.values()) == pytest.approx(1.0)
        # Principal moments separate boxes from noise shapes strongly.
        assert new.weights["principal_moments"] > 0.0

    def test_requires_relevant(self, engine):
        combo = CombinedSimilarity.uniform(FEATURES)
        with pytest.raises(ValueError):
            reconfigure_feature_weights(engine, combo, 1, relevant_ids=[])

    def test_floor_keeps_all_features_alive(self, engine):
        combo = CombinedSimilarity.uniform(FEATURES)
        new = reconfigure_feature_weights(
            engine, combo, 1, relevant_ids=[2], irrelevant_ids=[3]
        )
        assert all(w > 0 for w in new.weights.values())


class TestCombinedFeedbackSession:
    def test_session_improves_or_holds_relevant_count(self, engine):
        session = CombinedFeedbackSession(engine, 1, FEATURES, k=4)
        first = session.search()
        relevant = [h.shape_id for h in first if h.group == "boxes"]
        irrelevant = [h.shape_id for h in first if h.group != "boxes"]
        before = len(relevant)
        session.feedback(relevant or [2], irrelevant)
        second = session.search()
        after = sum(1 for h in second if h.group == "boxes")
        assert after >= before
        assert session.rounds == 1

    def test_defaults_to_all_db_features(self, engine):
        session = CombinedFeedbackSession(engine, 1, k=3)
        assert set(session.combination.feature_names()) == set(
            engine.database.feature_names()
        )
