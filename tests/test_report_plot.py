"""Report generator and ASCII PR plots."""

import numpy as np
import pytest

from repro.evaluation import ascii_pr_plot, generate_report, write_report
from repro.evaluation.pr_curve import PRCurve, PRPoint


def stub_curve(points):
    return PRCurve(
        query_id=1,
        feature_name="stub",
        points=[
            PRPoint(threshold=t, precision=p, recall=r, n_retrieved=5)
            for t, p, r in points
        ],
    )


class TestAsciiPlot:
    def test_renders_curve_markers(self):
        curve = stub_curve([(0.9, 1.0, 0.2), (0.5, 0.5, 0.6), (0.1, 0.1, 1.0)])
        text = ascii_pr_plot({"demo": curve})
        assert "o demo" in text
        assert "recall 1" in text
        assert text.count("o") >= 3  # marker + legend

    def test_multiple_curves_distinct_markers(self):
        a = stub_curve([(0.9, 1.0, 0.1)])
        b = stub_curve([(0.9, 0.2, 0.9)])
        text = ascii_pr_plot({"a": a, "b": b})
        assert "o a" in text
        assert "+ b" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_pr_plot({})
        with pytest.raises(ValueError):
            ascii_pr_plot({"x": stub_curve([(0.5, 1, 1)])}, width=5)


class TestReport:
    def test_full_report_structure(self, eval_db, eval_engine):
        text = generate_report(eval_db, eval_engine, include_extensions=False)
        assert text.startswith("# 3DESS reproduction report")
        for heading in (
            "Fig. 4", "Fig. 7", "Figs. 8-12", "Figs. 13/14",
            "Fig. 15", "Fig. 16", "R-tree",
        ):
            assert heading in text
        assert "FIG15" in text

    def test_extensions_included_by_default(self, eval_db, eval_engine):
        text = generate_report(eval_db, eval_engine)
        assert "mean average precision" in text
        assert "EXT-GROUPS" in text

    def test_write_report(self, eval_db, eval_engine, tmp_path):
        path = tmp_path / "report.md"
        write_report(eval_db, path, engine=eval_engine, include_extensions=False)
        assert path.read_text().startswith("# 3DESS reproduction report")
