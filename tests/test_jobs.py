"""Tests for :mod:`repro.jobs`: the killable worker pool, the durable
job queue/runner, and background re-extraction healing (including the
``three-dess jobs``/``verify`` CLI surface)."""

from __future__ import annotations

import hashlib
import json
import os
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import SystemConfig
from repro.core.system import ThreeDESS
from repro.db.database import ShapeDatabase
from repro.db.storage import verify_database
from repro.features.pipeline import FeaturePipeline
from repro.features.parallel import ParallelPipeline
from repro.jobs import (
    RE_EXTRACT,
    JobQueue,
    JobRunner,
    WorkerPool,
    make_reextract_handler,
)
from repro.robust.errors import (
    RETRYABLE_CODES,
    FailureInfo,
    SkeletonizationError,
    is_retryable,
)
from repro.search.api import SearchRequest

from .faults import good_mesh, hanging_mesh, register_sleeping_extractor

RES = 10


# ----------------------------------------------------------------------
# Worker-pool task handlers (module level: picklable by reference)
# ----------------------------------------------------------------------
def _toy_factory():
    def handle(payload):
        kind = payload[0] if isinstance(payload, tuple) else payload
        if kind == "hang":
            time.sleep(120.0)
        if kind == "slow":
            time.sleep(payload[1])
        if kind == "boom":
            raise ValueError("deterministic boom")
        if kind == "die":
            os._exit(13)
        return ("ok", payload, os.getpid())

    return handle


class TestWorkerPool:
    def test_results_ordered_and_workers_reused(self):
        with WorkerPool(_toy_factory, workers=2) as pool:
            first = pool.map(["a", "b", "c", "d"])
            second = pool.map(["e", "f"])
        assert [r.index for r in first] == [0, 1, 2, 3]
        assert all(r.ok and r.attempts == 1 for r in first + second)
        assert [r.value[1] for r in first] == ["a", "b", "c", "d"]
        pids_first = {r.value[2] for r in first}
        pids_second = {r.value[2] for r in second}
        assert len(pids_first) <= 2
        # Second map reuses the same live workers: no new PIDs appear.
        assert pids_second <= pids_first
        assert pool.respawns == 0

    def test_hung_task_killed_other_in_flight_tasks_survive(self):
        with WorkerPool(
            _toy_factory, workers=2, task_timeout=2.0, retries=0
        ) as pool:
            start = time.monotonic()
            results = pool.map([("slow", 1.0), "hang", "x", "y"])
            elapsed = time.monotonic() - start
        assert elapsed < 30, "deadline sweep must not wait out the hang"
        # The slow-but-legal task shared the pool with the hang and
        # still completed — only the offending worker was killed.
        assert results[0].ok and results[2].ok and results[3].ok
        hung = results[1]
        assert not hung.ok
        assert hung.failure.code == "extract.timeout"
        assert "timed out" in hung.failure.message
        assert pool.respawns == 1

    def test_timeout_retried_on_fresh_worker(self):
        with WorkerPool(
            _toy_factory, workers=1, task_timeout=1.0, retries=1
        ) as pool:
            result = pool.run("hang")
            assert not result.ok
            assert result.failure.code == "extract.timeout"
            assert result.attempts == 2
            assert pool.respawns == 2
            # The pool respawns lazily and keeps serving.
            assert pool.run("after").ok

    def test_deterministic_failure_returned_worker_survives(self):
        with WorkerPool(_toy_factory, workers=1, retries=2) as pool:
            before = pool.run("pid-probe")
            result = pool.run("boom")
            after = pool.run("pid-probe")
        assert not result.ok
        assert result.attempts == 1, "permanent failures must not retry"
        assert "boom" in result.failure.message
        # Raising inside the handler costs no process.
        assert before.value[2] == after.value[2]
        assert pool.respawns == 0

    def test_worker_crash_classified_and_retried(self):
        with WorkerPool(_toy_factory, workers=1, retries=1) as pool:
            result = pool.run("die")
            assert not result.ok
            assert result.failure.code == "extract.worker_crash"
            assert result.attempts == 2
            assert pool.run("alive").ok

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(_toy_factory, workers=1)
        assert pool.run("x").ok
        pool.close()
        pool.close()  # idempotent
        assert pool.alive_workers == 0
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(["y"])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(_toy_factory, workers=0)
        with pytest.raises(ValueError):
            WorkerPool(_toy_factory, task_timeout=0.0)
        with pytest.raises(ValueError):
            WorkerPool(_toy_factory, retries=-1)


class TestRetryClassification:
    def test_transient_codes_retryable(self):
        for code in ("extract.timeout", "extract.worker_crash",
                     "extract.MemoryError"):
            assert code in RETRYABLE_CODES
            assert is_retryable(code)

    def test_deterministic_codes_permanent(self):
        for code in ("mesh.zero_volume", "skeleton.no_convergence",
                     "extract.ValueError", "storage.corrupt"):
            assert not is_retryable(code)


class TestJobQueue:
    def test_lifecycle_pending_running_done(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            job = queue.enqueue("touch", {"n": 1})
            assert job.state == "pending" and job.attempts == 0
            claimed = queue.claim()
            assert claimed.job_id == job.job_id
            assert claimed.state == "running" and claimed.attempts == 1
            queue.complete(claimed)
            assert queue.get(job.job_id).state == "done"
            assert queue.claim() is None
            assert queue.counts()["done"] == 1
            assert not queue.pending_work()

    def test_claims_are_fifo(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            ids = [queue.enqueue("touch", {"n": i}).job_id for i in range(3)]
            assert [queue.claim().job_id for _ in range(3)] == ids

    def test_dedupe_unfinished_jobs(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            a = queue.enqueue(RE_EXTRACT, {"shape_id": 7})
            b = queue.enqueue(RE_EXTRACT, {"shape_id": 7})
            assert a.job_id == b.job_id
            assert len(queue) == 1
            job = queue.claim()
            queue.complete(job)
            # A finished job no longer blocks a fresh enqueue.
            c = queue.enqueue(RE_EXTRACT, {"shape_id": 7})
            assert c.job_id != a.job_id

    def test_failed_jobs_reclaim_until_dead(self, tmp_path):
        failure = FailureInfo(stage="jobs", code="jobs.test", message="nope")
        with JobQueue(tmp_path / "q.jsonl") as queue:
            queue.enqueue("touch", max_attempts=2)
            job = queue.claim()
            queue.fail(job, failure)
            assert job.state == "failed"
            job = queue.claim()  # failed jobs are re-claimable
            assert job.attempts == 2
            queue.fail(job, failure)
            assert job.state == "dead"
            assert job.error["code"] == "jobs.test"
            assert queue.claim() is None, "dead jobs are never re-claimed"

    def test_crash_resume_running_returns_to_pending(self, tmp_path):
        path = tmp_path / "q.jsonl"
        queue = JobQueue(path)
        queue.enqueue("touch", {"n": 1})
        queue.enqueue("touch", {"n": 2})
        queue.claim()  # crash here: never completed, handle never closed
        queue.close()

        resumed = JobQueue(path)
        counts = resumed.counts()
        assert counts["running"] == 0
        assert counts["pending"] == 2
        # The interrupted job keeps its consumed attempt.
        assert resumed.claim().attempts == 2
        resumed.close()

    def test_crash_resume_exhausted_attempts_go_dead(self, tmp_path):
        path = tmp_path / "q.jsonl"
        queue = JobQueue(path)
        queue.enqueue("touch", max_attempts=1)
        queue.claim()
        queue.close()

        resumed = JobQueue(path)
        job = resumed.jobs()[0]
        assert job.state == "dead"
        assert job.error["code"] == "jobs.interrupted"
        resumed.close()

    def test_truncated_tail_discarded_not_fatal(self, tmp_path):
        path = tmp_path / "q.jsonl"
        queue = JobQueue(path)
        queue.enqueue("touch", {"n": 1})
        done = queue.claim()
        queue.complete(done)
        queue.enqueue("touch", {"n": 2})
        queue.close()
        # Simulate a crash mid-append: the last line is cut in half.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])

        resumed = JobQueue(path)
        assert resumed.corrupt_lines == 1
        # The completed job's history is intact; the torn enqueue is
        # rolled back to its previous journaled state (absent here).
        assert resumed.get(done.job_id).state == "done"
        resumed.close()

    def test_journal_is_jsonl(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with JobQueue(path) as queue:
            queue.enqueue("touch", {"n": 1})
            queue.complete(queue.claim())
        lines = path.read_text().strip().split("\n")
        snapshots = [json.loads(line) for line in lines]
        assert [snap["state"] for snap in snapshots] == [
            "pending", "running", "done",
        ]


class TestJobRunner:
    def test_drains_queue_and_reports(self, tmp_path):
        ran = []
        with JobQueue(tmp_path / "q.jsonl") as queue:
            for i in range(3):
                queue.enqueue("touch", {"n": i})
            runner = JobRunner(
                queue, {"touch": lambda job: ran.append(job.payload["n"])}
            )
            report = runner.run()
        assert report.ok
        assert report.executed == 3 and len(report.done) == 3
        assert ran == [0, 1, 2]
        assert "3 done" in report.summary()

    def test_unknown_job_type_fails_job(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            queue.enqueue("mystery", max_attempts=1)
            report = JobRunner(queue).run()
            assert not report.ok
            assert report.dead and not report.done
            assert "no handler" in queue.jobs()[0].error["message"]

    def test_failing_handler_touches_job_once_per_drain(self, tmp_path):
        calls = []

        def explode(job):
            calls.append(job.attempts)
            raise RuntimeError("handler down")

        with JobQueue(tmp_path / "q.jsonl") as queue:
            queue.enqueue("touch", max_attempts=3)
            runner = JobRunner(queue, {"touch": explode})
            assert calls == [] and not runner.run().ok
            assert calls == [1], "one drain must not spin on a failing job"
            runner.run()
            report = runner.run()
        assert calls == [1, 2, 3]
        assert report.dead

    def test_max_jobs_caps_a_drain(self, tmp_path):
        with JobQueue(tmp_path / "q.jsonl") as queue:
            for i in range(4):
                queue.enqueue("touch", {"n": i})
            report = JobRunner(queue, {"touch": lambda job: None}).run(
                max_jobs=2
            )
            assert report.executed == 2
            assert queue.counts()["pending"] == 2


# ----------------------------------------------------------------------
# Re-extraction healing
# ----------------------------------------------------------------------
def _broken_thin(voxels):
    raise SkeletonizationError(
        "injected thinning failure", code="skeleton.no_convergence"
    )


@pytest.fixture
def corpus():
    return [good_mesh(), good_mesh(1.5), good_mesh(2.0)]


def _build_faulted_system(monkeypatch, corpus):
    """Ingest with skeletonization broken: every record degraded."""
    import repro.features.base as base

    system = ThreeDESS(SystemConfig(voxel_resolution=RES))
    with monkeypatch.context() as patch:
        patch.setattr(base, "thin", _broken_thin)
        result = system.insert_batch(corpus)
    assert result.degraded_ids == [1, 2, 3]
    return system


class TestReextractionHealing:
    def test_heal_restores_clean_ingest_state(self, monkeypatch, tmp_path, corpus):
        clean = ThreeDESS(SystemConfig(voxel_resolution=RES))
        clean.insert_batch(corpus)

        faulted = _build_faulted_system(monkeypatch, corpus)
        assert faulted.database.degraded_ids() == [1, 2, 3]

        queue_path = tmp_path / "jobs.jsonl"
        queued = faulted.enqueue_reextraction(queue_path)
        assert len(queued) == 3
        # Idempotent: re-enqueueing returns the same unfinished jobs.
        assert faulted.enqueue_reextraction(queue_path) == queued

        report = faulted.run_jobs(queue_path)
        assert report.ok and len(report.done) == 3
        assert faulted.database.degraded_ids() == []

        for shape_id in (1, 2, 3):
            healed = faulted.database.get(shape_id)
            reference = clean.database.get(shape_id)
            assert not healed.is_degraded()
            assert "missing.eigenvalues" not in healed.metadata
            assert sorted(healed.features) == sorted(reference.features)
            for fname, vec in reference.features.items():
                np.testing.assert_allclose(healed.features[fname], vec)

        # Search over the once-missing feature space now matches a
        # clean ingest exactly — vectors and index both healed.
        request = SearchRequest(query=1, mode="knn",
                                feature_name="eigenvalues", k=3)
        healed_hits = faulted.search(request)
        clean_hits = clean.search(request)
        assert healed_hits.shape_ids == clean_hits.shape_ids
        assert [h.distance for h in healed_hits.hits] == pytest.approx(
            [h.distance for h in clean_hits.hits]
        )
        assert all(not h.degraded for h in healed_hits.hits)

    def test_handler_reports_healing(self, monkeypatch, tmp_path, corpus):
        faulted = _build_faulted_system(monkeypatch, corpus)
        with JobQueue(tmp_path / "q.jsonl") as queue:
            queue.enqueue(RE_EXTRACT, {"shape_id": 2})
            runner = JobRunner(
                queue,
                {RE_EXTRACT: make_reextract_handler(faulted.database)},
            )
            report = runner.run()
        job_id = report.done[0]
        assert report.results[job_id] == {"shape_id": 2, "was_degraded": True}
        assert faulted.database.degraded_ids() == [1, 3]

    def test_reextract_missing_record_fails_job(self, tmp_path, corpus):
        system = ThreeDESS(SystemConfig(voxel_resolution=RES))
        system.insert_batch(corpus)
        with JobQueue(tmp_path / "q.jsonl") as queue:
            queue.enqueue(RE_EXTRACT, {"shape_id": 99}, max_attempts=1)
            report = system.run_jobs(queue)
        assert not report.ok and report.dead


class TestJobsCli:
    def _save_faulted_db(self, monkeypatch, tmp_path, corpus):
        faulted = _build_faulted_system(monkeypatch, corpus)
        db_dir = tmp_path / "db"
        faulted.save(db_dir)
        return db_dir

    def test_jobs_run_heals_and_saves(self, monkeypatch, tmp_path, capsys, corpus):
        db_dir = self._save_faulted_db(monkeypatch, tmp_path, corpus)
        assert main(["jobs", "run", str(db_dir)]) == 0
        out = capsys.readouterr().out
        assert "3 degraded record(s) queued" in out
        assert "healed database saved" in out
        assert os.path.exists(f"{db_dir}.jobs.jsonl")

        back = ThreeDESS.load(db_dir)
        assert back.database.degraded_ids() == []
        # Re-running is a no-op with exit 0 (nothing left to heal).
        assert main(["jobs", "run", str(db_dir)]) == 0
        capsys.readouterr()

    def test_jobs_status_lists_jobs(self, monkeypatch, tmp_path, capsys, corpus):
        db_dir = self._save_faulted_db(monkeypatch, tmp_path, corpus)
        assert main(["jobs", "status", str(db_dir)]) == 0
        assert "0 job(s)" in capsys.readouterr().out
        main(["jobs", "run", str(db_dir)])
        capsys.readouterr()
        assert main(["jobs", "status", str(db_dir)]) == 0
        out = capsys.readouterr().out
        assert "3 done" in out and RE_EXTRACT in out

    def test_jobs_run_exit_7_when_healing_fails(
        self, monkeypatch, tmp_path, capsys, corpus
    ):
        import repro.features.base as base

        db_dir = self._save_faulted_db(monkeypatch, tmp_path, corpus)
        # Skeletonization is *still* broken at healing time: every
        # re-extract job fails and the CLI must say so.
        monkeypatch.setattr(base, "thin", _broken_thin)
        assert main(["jobs", "run", str(db_dir)]) == 7
        err = capsys.readouterr().err
        assert "skeleton.no_convergence" in err


class TestVerifyCli:
    def _save_db(self, tmp_path, corpus):
        system = ThreeDESS(SystemConfig(voxel_resolution=RES))
        system.insert_batch(corpus)
        db_dir = tmp_path / "db"
        system.save(db_dir)
        return db_dir

    def test_verify_clean_exits_0(self, tmp_path, capsys, corpus):
        db_dir = self._save_db(tmp_path, corpus)
        assert main(["verify", str(db_dir)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_corrupt_features_exits_6(self, tmp_path, capsys, corpus):
        from .faults import flip_byte

        db_dir = self._save_db(tmp_path, corpus)
        flip_byte(db_dir / "features.npz")
        assert main(["verify", str(db_dir)]) == 6
        captured = capsys.readouterr()
        assert "integrity problem" in captured.err

    def test_verify_pinpoints_damaged_record(self, tmp_path, capsys, corpus):
        db_dir = self._save_db(tmp_path, corpus)
        # Silently substitute record 2's vector and re-checksum the
        # archive file: only the per-record digest can catch this.
        features_path = db_dir / "features.npz"
        with np.load(features_path) as data:
            arrays = {key: np.asarray(data[key]) for key in data.files}
        arrays["2/eigenvalues"] = arrays["2/eigenvalues"] + 1.0
        np.savez(features_path, **arrays)
        manifest_path = db_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["checksums"]["features.npz"] = hashlib.sha256(
            features_path.read_bytes()
        ).hexdigest()
        manifest_path.write_text(json.dumps(manifest))

        problems = verify_database(db_dir)
        assert list(problems) == ["record:2"]
        assert main(["verify", str(db_dir)]) == 6
        captured = capsys.readouterr()
        assert "record:2" in captured.out
        assert "damaged record ids: 2" in captured.err


class TestPersistentPoolIngestion:
    def test_pool_strategies_equivalent(self):
        feature = register_sleeping_extractor()
        meshes = [good_mesh(), hanging_mesh(), good_mesh(1.5)]
        outcomes = {}
        for strategy in ("persistent", "fork"):
            pipeline = FeaturePipeline(
                feature_names=["geometric_params", feature],
                voxel_resolution=RES,
            )
            with ParallelPipeline(
                pipeline, workers=2, task_timeout=2.0, retries=1,
                pool=strategy,
            ) as par:
                outcomes[strategy] = par.extract_batch(meshes)
        for a, b in zip(outcomes["persistent"], outcomes["fork"]):
            assert a.ok == b.ok
            if a.ok:
                assert sorted(a.features) == sorted(b.features)
                for fname in a.features:
                    np.testing.assert_allclose(a.features[fname], b.features[fname])
            else:
                assert a.failure.code == b.failure.code == "extract.timeout"
                assert a.attempts == b.attempts == 2

    def test_insert_meshes_persistent_pool(self):
        feature = register_sleeping_extractor()
        pipeline = FeaturePipeline(
            feature_names=["geometric_params", feature],
            voxel_resolution=RES,
        )
        db = ShapeDatabase(pipeline)
        result = db.insert_meshes(
            [good_mesh(), hanging_mesh()],
            workers=2,
            timeout=2.0,
            retries=0,
            degraded=False,
            pool="persistent",
        )
        assert result.shape_ids == [1, None]
        assert result.errors[0].code == "extract.timeout"

    def test_invalid_pool_rejected(self):
        pipeline = FeaturePipeline(voxel_resolution=RES)
        with pytest.raises(ValueError, match="pool"):
            ParallelPipeline(pipeline, pool="magic")
        with pytest.raises(ValueError, match="pool"):
            SystemConfig(extraction_pool="magic").validate()
