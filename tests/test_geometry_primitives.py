"""Primitives: analytic volumes, watertightness, validation."""

import numpy as np
import pytest

from repro.geometry import (
    MeshError,
    annular_prism,
    box,
    cone,
    cylinder,
    extrude_polygon,
    frustum,
    hex_nut,
    plate_with_rect_hole,
    prism,
    surface_area,
    torus,
    tube,
    uv_sphere,
    volume,
)
from repro.geometry.polygon import rectangle, regular_polygon


def polygon_prism_volume(n, radius, height):
    """Analytic volume of a regular n-gon prism."""
    return n * 0.5 * radius**2 * np.sin(2 * np.pi / n) * height


class TestBox:
    def test_volume_and_area(self):
        b = box((2, 3, 4))
        assert volume(b) == pytest.approx(24.0)
        assert surface_area(b) == pytest.approx(2 * (6 + 8 + 12))

    def test_centered(self):
        b = box((2, 2, 2), center=(5, 6, 7))
        lo, hi = b.bounds()
        assert np.allclose((lo + hi) / 2, [5, 6, 7])

    def test_watertight(self):
        assert box((1, 2, 3)).is_watertight()

    def test_invalid_extents(self):
        with pytest.raises(MeshError):
            box((0, 1, 1))
        with pytest.raises(MeshError):
            box((1, 1))


class TestExtrusion:
    def test_l_profile_volume(self):
        profile = [[0, 0], [3, 0], [3, 1], [1, 1], [1, 4], [0, 4]]
        mesh = extrude_polygon(profile, 0.5)
        assert volume(mesh) == pytest.approx(6 * 0.5)
        assert mesh.is_watertight()

    def test_cw_profile_same_volume(self):
        profile = [[0, 0], [3, 0], [3, 1], [1, 1], [1, 4], [0, 4]]
        cw = profile[::-1]
        assert volume(extrude_polygon(cw, 0.5)) == pytest.approx(3.0)

    def test_zero_height_rejected(self):
        with pytest.raises(MeshError):
            extrude_polygon([[0, 0], [1, 0], [0, 1]], 0.0)

    def test_prism_volume(self):
        mesh = prism(6, 2.0, 3.0)
        assert volume(mesh) == pytest.approx(polygon_prism_volume(6, 2.0, 3.0))


class TestCylinderFamily:
    def test_cylinder_volume(self):
        assert volume(cylinder(1.0, 2.0, 64)) == pytest.approx(
            polygon_prism_volume(64, 1.0, 2.0)
        )

    def test_cylinder_approaches_pi(self):
        assert volume(cylinder(1.0, 1.0, 256)) == pytest.approx(np.pi, rel=2e-3)

    def test_cylinder_watertight(self):
        assert cylinder(1.0, 2.0, 16).is_watertight()

    def test_cylinder_min_segments(self):
        with pytest.raises(MeshError):
            cylinder(1.0, 1.0, 2)

    def test_cone_volume(self):
        # Polygonal cone volume = (1/3) * base area * height.
        base_area = 32 * 0.5 * np.sin(2 * np.pi / 32)
        assert volume(cone(1.0, 3.0, 32)) == pytest.approx(base_area)

    def test_cone_watertight(self):
        assert cone(1.0, 2.0, 16).is_watertight()

    def test_frustum_volume_between_cone_and_cylinder(self):
        fr = volume(frustum(2.0, 1.0, 3.0, 64))
        assert volume(cone(2.0, 3.0 * 2, 64)) / 2 < fr < volume(cylinder(2.0, 3.0, 64))

    def test_frustum_watertight(self):
        assert frustum(2.0, 1.0, 3.0, 24).is_watertight()

    def test_frustum_validation(self):
        with pytest.raises(MeshError):
            frustum(-1.0, 1.0, 1.0)
        with pytest.raises(MeshError):
            frustum(1.0, 1.0, -2.0)


class TestHollow:
    def test_tube_volume(self):
        got = volume(tube(2.0, 1.0, 1.5, 64))
        expected = polygon_prism_volume(64, 2.0, 1.5) - polygon_prism_volume(64, 1.0, 1.5)
        assert got == pytest.approx(expected)

    def test_tube_watertight(self):
        assert tube(2.0, 1.0, 1.0, 24).is_watertight()

    def test_tube_genus_one(self):
        assert tube(2.0, 1.0, 1.0, 24).euler_characteristic() == 0

    def test_tube_validation(self):
        with pytest.raises(MeshError):
            tube(1.0, 2.0, 1.0)  # inner > outer

    def test_plate_with_hole_volume(self):
        mesh = plate_with_rect_hole(4, 3, 0.5, 1, 1)
        assert volume(mesh) == pytest.approx((12 - 1) * 0.5)
        assert mesh.is_watertight()

    def test_plate_hole_must_fit(self):
        with pytest.raises(MeshError):
            plate_with_rect_hole(4, 3, 0.5, 5, 1)

    def test_hex_nut_volume_less_than_solid_prism(self):
        af = 4.0
        nut = hex_nut(af, 0.8, 1.0)
        solid = prism(6, af / np.sqrt(3), 1.0)
        assert 0 < volume(nut) < volume(solid)
        assert nut.is_watertight()

    def test_hex_nut_validation(self):
        with pytest.raises(MeshError):
            hex_nut(2.0, 1.5, 1.0)  # bore too big

    def test_annular_prism_mismatched_profiles(self):
        with pytest.raises(MeshError):
            annular_prism(regular_polygon(6, 2.0), regular_polygon(8, 1.0), 1.0)

    def test_annular_prism_rectangles(self):
        mesh = annular_prism(rectangle(4, 4), rectangle(2, 2), 1.0)
        assert volume(mesh) == pytest.approx(16 - 4)


class TestRound:
    def test_sphere_volume_converges(self):
        got = volume(uv_sphere(1.0, 32, 64))
        assert got == pytest.approx(4.0 / 3.0 * np.pi, rel=5e-3)

    def test_sphere_watertight(self):
        assert uv_sphere(1.0, 8, 12).is_watertight()

    def test_sphere_validation(self):
        with pytest.raises(MeshError):
            uv_sphere(-1.0)
        with pytest.raises(MeshError):
            uv_sphere(1.0, 1, 12)

    def test_torus_volume_converges(self):
        got = volume(torus(3.0, 1.0, 64, 32))
        assert got == pytest.approx(2 * np.pi**2 * 3.0, rel=1e-2)

    def test_torus_watertight(self):
        assert torus(2.0, 0.5, 16, 8).is_watertight()

    def test_torus_euler_zero(self):
        assert torus(2.0, 0.5, 16, 8).euler_characteristic() == 0

    def test_torus_validation(self):
        with pytest.raises(MeshError):
            torus(1.0, 2.0)
