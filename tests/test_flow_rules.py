"""Tests for the flow-sensitive rules RPL100-RPL102
(:mod:`repro.lint.flowrules`).

Positive/negative snippets compiled through :func:`repro.lint.lint_source`,
mirroring the style of ``tests/test_lint.py`` for the AST rules.
"""

import textwrap

from repro.lint import lint_source


def run_rule(code, source, path="src/repro/somewhere/mod.py"):
    diags, suppressed = lint_source(
        path, textwrap.dedent(source), active=frozenset({code})
    )
    return diags, suppressed


def codes(diags):
    return [d.code for d in diags]


# ----------------------------------------------------------------------
# RPL100 — lock discipline
# ----------------------------------------------------------------------
class TestRPL100:
    GUARDED = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._value = 0

        def set(self, v):
            with self._lock:
                self._value = v
    """

    def test_unlocked_read_of_guarded_attr_is_flagged(self):
        diags, _ = run_rule(
            "RPL100",
            self.GUARDED
            + """
        def peek(self):
            return self._value
    """,
        )
        assert codes(diags) == ["RPL100"]
        assert "_value" in diags[0].message
        assert "_lock" in diags[0].message

    def test_unlocked_write_is_flagged(self):
        diags, _ = run_rule(
            "RPL100",
            self.GUARDED
            + """
        def clobber(self):
            self._value = -1
    """,
        )
        assert codes(diags) == ["RPL100"]
        assert "write" in diags[0].message

    def test_locked_access_is_clean(self):
        diags, _ = run_rule(
            "RPL100",
            self.GUARDED
            + """
        def peek(self):
            with self._lock:
                return self._value
    """,
        )
        assert diags == []

    def test_init_writes_are_exempt(self):
        diags, _ = run_rule("RPL100", self.GUARDED)
        assert diags == []

    def test_partially_locked_branch_is_flagged(self):
        # Lock held on one path only: must-hold analysis flags the join.
        diags, _ = run_rule(
            "RPL100",
            self.GUARDED
            + """
        def maybe(self, flag):
            if flag:
                self._lock.acquire()
            self._value += 1
    """,
        )
        assert codes(diags) == ["RPL100"]

    def test_acquire_release_calls_are_understood(self):
        diags, _ = run_rule(
            "RPL100",
            self.GUARDED
            + """
        def explicit(self):
            self._lock.acquire()
            self._value += 1
            self._lock.release()
    """,
        )
        assert diags == []

    def test_mutator_call_counts_as_write(self):
        diags, _ = run_rule(
            "RPL100",
            """
    import threading

    class Q:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def put(self, item):
            with self._lock:
                self._items.append(item)

        def drain(self):
            self._items.clear()
    """,
        )
        assert codes(diags) == ["RPL100"]
        assert "_items" in diags[0].message

    def test_unguarded_attrs_are_not_claimed(self):
        # An attribute never written under the lock has no inferred
        # guard; accesses to it are not this rule's business.
        diags, _ = run_rule(
            "RPL100",
            self.GUARDED
            + """
        def other(self):
            self.tag = "x"
            return self.tag
    """,
        )
        assert diags == []

    def test_class_without_locks_is_skipped(self):
        diags, _ = run_rule(
            "RPL100",
            """
    class Plain:
        def __init__(self):
            self._value = 0

        def bump(self):
            self._value += 1
    """,
        )
        assert diags == []

    def test_condition_counts_as_lock(self):
        diags, _ = run_rule(
            "RPL100",
            """
    import threading

    class W:
        def __init__(self):
            self._cond = threading.Condition()
            self._ready = False

        def signal(self):
            with self._cond:
                self._ready = True
                self._cond.notify()

        def is_ready(self):
            return self._ready
    """,
        )
        assert codes(diags) == ["RPL100"]
        assert "_cond" in diags[0].message

    def test_def_line_suppression_covers_whole_function(self):
        diags, suppressed = run_rule(
            "RPL100",
            self.GUARDED
            + """
        # repro-lint: disable=RPL100 -- caller holds self._lock
        def _peek_locked(self):
            a = self._value
            b = self._value
            return a + b
    """,
        )
        assert diags == []
        assert suppressed == 2

    def test_double_checked_read_needs_one_suppression_line(self):
        diags, _ = run_rule(
            "RPL100",
            self.GUARDED
            + """
        def get(self):
            # repro-lint: disable=RPL100 -- double-checked fast path
            v = self._value
            if v:
                return v
            with self._lock:
                return self._value
    """,
        )
        assert diags == []


# ----------------------------------------------------------------------
# RPL101 — deadline propagation
# ----------------------------------------------------------------------
class TestRPL101:
    def test_unused_deadline_param_is_flagged(self):
        diags, _ = run_rule(
            "RPL101",
            """
    from repro.robust import Deadline
    from typing import Optional

    def stage(x, deadline: Optional[Deadline] = None):
        return x * 2
    """,
        )
        assert codes(diags) == ["RPL101"]
        assert "never checks or forwards" in diags[0].message

    def test_checked_deadline_is_clean(self):
        diags, _ = run_rule(
            "RPL101",
            """
    from repro.robust import Deadline

    def stage(x, deadline: Deadline):
        deadline.check("stage")
        return x * 2
    """,
        )
        assert diags == []

    def test_dropped_forward_to_aware_callee_is_flagged(self):
        diags, _ = run_rule(
            "RPL101",
            """
    from repro.robust import Deadline
    from typing import Optional

    def inner(y, deadline: Optional[Deadline] = None):
        if deadline is not None:
            deadline.check("inner")
        return y

    def outer(x, deadline: Optional[Deadline] = None):
        if deadline is not None:
            deadline.check("outer")
        return inner(x)
    """,
        )
        assert codes(diags) == ["RPL101"]
        assert "inner" in diags[0].message

    def test_forwarded_deadline_is_clean(self):
        diags, _ = run_rule(
            "RPL101",
            """
    from repro.robust import Deadline
    from typing import Optional

    def inner(y, deadline: Optional[Deadline] = None):
        if deadline is not None:
            deadline.check("inner")
        return y

    def outer(x, deadline: Optional[Deadline] = None):
        return inner(x, deadline=deadline)
    """,
        )
        assert diags == []

    def test_derived_deadline_counts_as_forwarding(self):
        diags, _ = run_rule(
            "RPL101",
            """
    from repro.robust import Deadline
    from typing import Optional

    def inner(y, deadline: Optional[Deadline] = None):
        if deadline is not None:
            deadline.check("inner")
        return y

    def outer(x, deadline: Optional[Deadline] = None):
        effective = tighter(deadline, Deadline.after(0.5))
        return inner(x, effective)
    """,
        )
        assert diags == []

    def test_explicit_none_keyword_is_a_decision_not_a_drop(self):
        diags, _ = run_rule(
            "RPL101",
            """
    from repro.robust import Deadline
    from typing import Optional

    def inner(y, deadline: Optional[Deadline] = None):
        if deadline is not None:
            deadline.check("inner")
        return y

    def outer(x, deadline: Optional[Deadline] = None):
        if deadline is not None:
            deadline.check("outer")
        return inner(x, deadline=None)
    """,
        )
        assert diags == []

    def test_float_deadline_name_is_not_claimed(self):
        # jobs.pool / features.parallel use `deadline` for plain float
        # epochs; the rule keys on the Deadline annotation, not the name.
        diags, _ = run_rule(
            "RPL101",
            """
    def wait(x, deadline: float):
        return x
    """,
        )
        assert diags == []

    def test_unannotated_deadline_is_not_claimed(self):
        diags, _ = run_rule(
            "RPL101",
            """
    def wait(x, deadline=None):
        return x
    """,
        )
        assert diags == []

    def test_calls_to_unaware_callees_are_clean(self):
        diags, _ = run_rule(
            "RPL101",
            """
    from repro.robust import Deadline

    def stage(x, deadline: Deadline):
        deadline.check("stage")
        return transform(x)
    """,
        )
        assert diags == []

    def test_cross_module_cascade_call_is_aware(self):
        diags, _ = run_rule(
            "RPL101",
            """
    from repro.robust import Deadline
    from typing import Optional

    def outer(x, deadline: Optional[Deadline] = None):
        if deadline is not None:
            deadline.check("outer")
        return run_cascade(x)
    """,
        )
        assert codes(diags) == ["RPL101"]
        assert "run_cascade" in diags[0].message


# ----------------------------------------------------------------------
# RPL102 — resource lifecycle
# ----------------------------------------------------------------------
class TestRPL102:
    def test_leak_on_normal_path_is_flagged(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(path):
        h = open(path)
        data = h.read()
        return data
    """,
        )
        assert codes(diags) == ["RPL102"]
        assert "`h`" in diags[0].message
        assert "open" in diags[0].message

    def test_with_statement_is_clean(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(path):
        with open(path) as h:
            return h.read()
    """,
        )
        assert diags == []

    def test_close_on_every_path_is_clean(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(path, flag):
        h = open(path)
        if flag:
            h.close()
            return 1
        h.close()
        return 2
    """,
        )
        assert diags == []

    def test_close_on_one_branch_only_is_flagged(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(path, flag):
        h = open(path)
        if flag:
            h.close()
        return 1
    """,
        )
        assert codes(diags) == ["RPL102"]

    def test_try_finally_close_is_clean(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(path):
        h = open(path)
        try:
            return h.read()
        finally:
            h.close()
    """,
        )
        assert diags == []

    def test_escape_via_return_is_clean(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(path):
        return open(path)
    """,
        )
        assert diags == []

    def test_escape_to_attribute_is_clean(self):
        diags, _ = run_rule(
            "RPL102",
            """
    class Holder:
        def attach(self, path):
            h = open(path)
            self._handle = h
    """,
        )
        assert diags == []

    def test_escape_as_call_argument_is_clean(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(path):
        h = open(path)
        return json.load(h)
    """,
        )
        assert diags == []

    def test_closing_helper_is_clean(self):
        diags, _ = run_rule(
            "RPL102",
            """
    from contextlib import closing

    def f(host):
        conn = HTTPConnection(host)
        with closing(conn):
            pass
    """,
        )
        assert diags == []

    def test_socket_constructors_are_tracked(self):
        diags, _ = run_rule(
            "RPL102",
            """
    import socket

    def f(addr):
        s = socket.create_connection(addr)
        s.sendall(b"ping")
        return True
    """,
        )
        assert codes(diags) == ["RPL102"]
        assert "`s`" in diags[0].message

    def test_exception_path_leak_is_not_flagged(self):
        # RPL102 judges non-exceptional paths only: the raise route
        # leaking h is a known accepted limit.
        diags, _ = run_rule(
            "RPL102",
            """
    def f(path):
        h = open(path)
        risky()
        h.close()
        return 1
    """,
        )
        assert diags == []

    def test_loop_reopen_with_close_is_clean(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(paths):
        for p in paths:
            h = open(p)
            h.close()
        return 1
    """,
        )
        assert diags == []

    def test_loop_reopen_without_close_is_flagged(self):
        diags, _ = run_rule(
            "RPL102",
            """
    def f(paths):
        for p in paths:
            h = open(p)
        return 1
    """,
        )
        assert codes(diags) == ["RPL102"]

    def test_suppression_on_open_line_works(self):
        diags, suppressed = run_rule(
            "RPL102",
            """
    def f(path):
        h = open(path)  # repro-lint: disable=RPL102 -- kept open on purpose; closed atexit
        h.read()
        return 1
    """,
        )
        assert diags == []
        assert suppressed == 1
