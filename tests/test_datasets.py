"""The synthetic 113-shape corpus (Fig. 4 profile)."""

import numpy as np
import pytest

from repro.datasets import (
    FAMILIES,
    GROUP_SIZES,
    N_NOISE,
    build_corpus,
    group_size_profile,
    make_noise_shapes,
)
from repro.geometry import volume


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(seed=42)


class TestProfile:
    def test_total_shapes(self, corpus):
        assert len(corpus) == 113

    def test_group_structure(self, corpus):
        groups = {}
        for shape in corpus:
            groups.setdefault(shape.group, []).append(shape)
        noise = groups.pop(None)
        assert len(noise) == 27
        assert len(groups) == 26
        assert sum(len(v) for v in groups.values()) == 86

    def test_sizes_match_declaration(self, corpus):
        counts = {}
        for shape in corpus:
            if shape.group:
                counts[shape.group] = counts.get(shape.group, 0) + 1
        assert counts == GROUP_SIZES

    def test_size_profile_range(self):
        profile = group_size_profile()
        assert profile[0] == 2
        assert profile[-1] == 8
        assert sum(profile) == 86
        assert len(profile) == 26

    def test_26_families_registered(self):
        assert len(FAMILIES) == 26
        assert set(GROUP_SIZES) == set(FAMILIES)


class TestDeterminism:
    def test_same_seed_same_corpus(self, corpus):
        again = build_corpus(seed=42)
        for a, b in zip(corpus, again):
            assert a.name == b.name
            assert np.array_equal(a.mesh.vertices, b.mesh.vertices)

    def test_different_seed_differs(self, corpus):
        other = build_corpus(seed=43)
        same = all(
            np.array_equal(a.mesh.vertices, b.mesh.vertices)
            for a, b in zip(corpus, other)
        )
        assert not same


class TestShapeQuality:
    def test_all_volumes_positive(self, corpus):
        for shape in corpus:
            assert volume(shape.mesh) > 1e-6, shape.name

    def test_names_unique(self, corpus):
        names = [s.name for s in corpus]
        assert len(set(names)) == len(names)

    def test_group_members_share_volume_scale(self, corpus):
        by_group = {}
        for shape in corpus:
            if shape.group:
                by_group.setdefault(shape.group, []).append(volume(shape.mesh))
        for group, vols in by_group.items():
            vols = np.asarray(vols)
            assert vols.max() / vols.min() < 1.5, group

    def test_every_family_generates_valid_mesh(self, rng):
        for name, maker in FAMILIES.items():
            mesh = maker(rng)
            assert mesh.n_faces > 0, name
            assert volume(mesh) > 1e-6, name

    def test_noise_shape_count_and_validity(self, rng):
        shapes = make_noise_shapes(rng, N_NOISE)
        assert len(shapes) == N_NOISE
        for mesh in shapes:
            assert volume(mesh) > 1e-6, mesh.name

    def test_noise_count_parameter(self, rng):
        assert len(make_noise_shapes(rng, 5)) == 5


class TestEvalDatabase:
    def test_cached_database_complete(self, eval_db):
        assert len(eval_db) == 113
        assert set(eval_db.feature_names()) == {
            "moment_invariants",
            "geometric_params",
            "principal_moments",
            "eigenvalues",
        }

    def test_feature_dimensions(self, eval_db):
        rec = eval_db.get(eval_db.ids()[0])
        assert rec.feature("moment_invariants").shape == (3,)
        assert rec.feature("geometric_params").shape == (5,)
        assert rec.feature("principal_moments").shape == (3,)
        assert rec.feature("eigenvalues").shape == (10,)

    def test_all_features_finite(self, eval_db):
        for rec in eval_db:
            for name, vec in rec.features.items():
                assert np.isfinite(vec).all(), (rec.name, name)

    def test_classification_map_matches_profile(self, eval_db):
        cmap = eval_db.classification_map()
        assert sorted(len(v) for v in cmap.values()) == group_size_profile()
