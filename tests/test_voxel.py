"""Voxel grids, rasterization, solid fill, morphology."""

import numpy as np
import pytest
from scipy import ndimage

from repro.geometry import box, torus, tube
from repro.voxel import (
    VoxelGrid,
    dilate,
    erode,
    exterior_mask,
    fill_interior,
    label_components,
    surface_voxels,
    voxelize,
    voxelize_surface,
)


class TestVoxelGrid:
    def test_basic_properties(self):
        occ = np.zeros((3, 4, 5), dtype=bool)
        occ[1, 2, 3] = True
        grid = VoxelGrid(occ, origin=(1, 1, 1), spacing=0.5)
        assert grid.shape == (3, 4, 5)
        assert grid.n_occupied == 1
        assert grid.volume() == pytest.approx(0.125)

    def test_world_index_roundtrip(self):
        grid = VoxelGrid(np.ones((4, 4, 4), dtype=bool), origin=(0, 0, 0), spacing=0.25)
        centers = grid.index_to_world([[0, 0, 0], [3, 3, 3]])
        idx = grid.world_to_index(centers)
        assert idx.tolist() == [[0, 0, 0], [3, 3, 3]]

    def test_contains_index(self):
        grid = VoxelGrid(np.ones((2, 2, 2), dtype=bool))
        assert grid.contains_index([[0, 0, 0], [1, 1, 1], [2, 0, 0]]).tolist() == [
            True,
            True,
            False,
        ]

    def test_voxel_centers_match_occupancy(self):
        occ = np.zeros((3, 3, 3), dtype=bool)
        occ[1, 1, 1] = True
        grid = VoxelGrid(occ, spacing=2.0)
        assert np.allclose(grid.voxel_centers(), [[3, 3, 3]])

    def test_validation(self):
        with pytest.raises(ValueError):
            VoxelGrid(np.ones((2, 2)))
        with pytest.raises(ValueError):
            VoxelGrid(np.ones((2, 2, 2)), spacing=0.0)
        with pytest.raises(ValueError):
            VoxelGrid(np.ones((2, 2, 2)), origin=(0, 0))

    def test_equality_and_copy(self):
        grid = VoxelGrid(np.ones((2, 2, 2), dtype=bool))
        clone = grid.copy()
        assert clone == grid
        clone.occupancy[0, 0, 0] = False
        assert clone != grid


class TestVoxelize:
    def test_box_volume_within_shell_error(self, asym_box):
        grid = voxelize(asym_box, resolution=32)
        assert grid.volume() == pytest.approx(48.0, rel=0.2)
        assert grid.volume() >= 48.0  # occupancy overestimates

    def test_resolution_improves_accuracy(self, unit_box):
        coarse = voxelize(unit_box, resolution=8).volume()
        fine = voxelize(unit_box, resolution=48).volume()
        assert abs(fine - 1.0) < abs(coarse - 1.0)

    def test_surface_only_is_hollow(self, asym_box):
        surf = voxelize_surface(asym_box, resolution=24)
        solid = voxelize(asym_box, resolution=24)
        assert surf.n_occupied < solid.n_occupied

    def test_tube_hole_is_preserved(self):
        grid = voxelize(tube(2.0, 1.0, 1.0, 32), resolution=32)
        # The voxel column through the hole center must be empty.
        center = grid.world_to_index([[0.0, 0.0, 0.5]])[0]
        assert not grid.occupancy[center[0], center[1], center[2]]

    def test_padding_keeps_boundary_clear(self, unit_box):
        grid = voxelize(unit_box, resolution=16, padding=2)
        occ = grid.occupancy
        assert not occ[0].any() and not occ[-1].any()
        assert not occ[:, 0].any() and not occ[:, -1].any()

    def test_validation(self, unit_box):
        from repro.geometry import TriangleMesh

        with pytest.raises(ValueError):
            voxelize(unit_box, resolution=1)
        with pytest.raises(ValueError):
            voxelize(TriangleMesh([], []), resolution=8)


class TestMorphology:
    def test_label_components_matches_scipy(self, rng):
        mask = rng.random((12, 12, 12)) < 0.3
        ours, n_ours = label_components(mask)
        theirs, n_theirs = ndimage.label(mask)
        assert n_ours == n_theirs
        # Label ids may differ; compare partition structure.
        for lab in range(1, n_ours + 1):
            where = ours == lab
            scipy_labels = np.unique(theirs[where])
            assert len(scipy_labels) == 1

    def test_exterior_mask_excludes_cavity(self):
        shell = np.zeros((7, 7, 7), dtype=bool)
        shell[1:6, 1:6, 1:6] = True
        shell[2:5, 2:5, 2:5] = False  # hollow cavity
        ext = exterior_mask(shell)
        assert not ext[3, 3, 3]  # cavity is not exterior
        assert ext[0, 0, 0]

    def test_fill_interior_fills_cavity(self):
        shell = np.zeros((7, 7, 7), dtype=bool)
        shell[1:6, 1:6, 1:6] = True
        shell[2:5, 2:5, 2:5] = False
        solid = fill_interior(shell)
        assert solid[3, 3, 3]
        assert solid.sum() == 125  # the full 5^3 block

    def test_fill_interior_matches_scipy(self, rng):
        from repro.geometry import uv_sphere
        from repro.voxel import voxelize_surface

        surf = voxelize_surface(uv_sphere(1.0, 16, 32), resolution=20).occupancy
        ours = fill_interior(surf)
        theirs = ndimage.binary_fill_holes(surf)
        assert np.array_equal(ours, theirs)

    def test_erode_dilate_opening_is_subset(self):
        block = np.zeros((9, 9, 9), dtype=bool)
        block[2:7, 2:7, 2:7] = True
        opened = dilate(erode(block))
        assert (opened <= block).all()  # opening never grows the set
        assert opened[4, 4, 4]  # and keeps the core
        # 6-connected dilation does not restore cube corners.
        assert not opened[2, 2, 2]

    def test_erode_boundary_voxels_removed(self):
        full = np.ones((4, 4, 4), dtype=bool)
        eroded = erode(full)
        assert eroded.sum() == 8  # inner 2^3

    def test_surface_voxels_of_block(self):
        block = np.zeros((8, 8, 8), dtype=bool)
        block[1:7, 1:7, 1:7] = True
        surf = surface_voxels(block)
        assert surf.sum() == 6**3 - 4**3

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            label_components(np.ones((3, 3)))
